#include "server/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cstdio>

#include "common/logging.h"

namespace galaxy::server {

namespace {

/// The wakeup pipe carries at most one pending byte; coalescing is handled
/// by EventLoop::wakeup_pending_, so a short read/write here is harmless.
// galaxy-lint: allow-file(raw-file-io) -- wakeup pipe + poller fds, not
// data files; durability's Env seam does not apply to kernel event fds.

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK): " +
                            std::string(::strerror(errno)));
  }
  return Status::OK();
}

// ---- poll(2) backend -------------------------------------------------------

class PollPoller final : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    if (index_.count(fd) != 0) {
      return Status::AlreadyExists("poll: fd already registered");
    }
    struct pollfd p;
    p.fd = fd;
    p.events = Events(want_read, want_write);
    p.revents = 0;
    index_[fd] = fds_.size();
    fds_.push_back(p);
    return Status::OK();
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) {
      return Status::NotFound("poll: fd not registered");
    }
    fds_[it->second].events = Events(want_read, want_write);
    return Status::OK();
  }

  void Remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    size_t pos = it->second;
    size_t last = fds_.size() - 1;
    if (pos != last) {
      fds_[pos] = fds_[last];
      index_[fds_[pos].fd] = pos;
    }
    fds_.pop_back();
    index_.erase(it);
  }

  Status Wait(int timeout_ms, std::vector<ReadyEvent>* out) override {
    int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Status::Internal("poll: " + std::string(::strerror(errno)));
    }
    for (const struct pollfd& p : fds_) {
      if (n == 0) break;
      if (p.revents == 0) continue;
      --n;
      ReadyEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLPRI)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out->push_back(ev);
    }
    return Status::OK();
  }

  const char* name() const override { return "poll"; }

 private:
  static short Events(bool want_read, bool want_write) {
    short e = 0;
    if (want_read) e |= POLLIN;
    if (want_write) e |= POLLOUT;
    return e;
  }

  std::vector<struct pollfd> fds_;
  std::map<int, size_t> index_;
};

// ---- epoll backend ---------------------------------------------------------

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  Status Add(int fd, bool want_read, bool want_write) override {
    struct epoll_event ev = Event(fd, want_read, want_write);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::Internal("epoll_ctl(ADD): " +
                              std::string(::strerror(errno)));
    }
    return Status::OK();
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    struct epoll_event ev = Event(fd, want_read, want_write);
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return Status::Internal("epoll_ctl(MOD): " +
                              std::string(::strerror(errno)));
    }
    return Status::OK();
  }

  void Remove(int fd) override {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  Status Wait(int timeout_ms, std::vector<ReadyEvent>* out) override {
    struct epoll_event events[256];
    int n = ::epoll_wait(epfd_, events, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Status::Internal("epoll_wait: " +
                              std::string(::strerror(errno)));
    }
    for (int i = 0; i < n; ++i) {
      ReadyEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLPRI)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.hangup = (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
      out->push_back(ev);
    }
    return Status::OK();
  }

  const char* name() const override { return "epoll"; }

 private:
  // Level-triggered: the connection machine re-arms interest explicitly
  // (EPOLLOUT only while the output buffer is non-empty), which keeps the
  // poll(2) backend behaviorally identical.
  static struct epoll_event Event(int fd, bool want_read, bool want_write) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.data.fd = fd;
    if (want_read) ev.events |= EPOLLIN | EPOLLRDHUP;
    if (want_write) ev.events |= EPOLLOUT;
    return ev;
  }

  int epfd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> MakePoller(bool prefer_epoll) {
#ifdef __linux__
  if (prefer_epoll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->valid()) return ep;
    // epoll_create1 failed (fd exhaustion?); the poll(2) backend still works.
  }
#else
  (void)prefer_epoll;
#endif
  return std::make_unique<PollPoller>();
}

// ---- TimerWheel ------------------------------------------------------------

TimerWheel::TimerWheel(std::chrono::milliseconds tick, size_t slots)
    : tick_(tick.count() > 0 ? tick : std::chrono::milliseconds{1}),
      slots_(std::max<size_t>(slots, 2)),
      last_processed_tick_(0),
      epoch_(Clock::now()) {}

size_t TimerWheel::SlotFor(Clock::time_point deadline) const {
  auto since_epoch =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - epoch_);
  int64_t ticks = since_epoch.count() / tick_.count();
  if (ticks < 0) ticks = 0;
  return static_cast<size_t>(ticks) % slots_.size();
}

void TimerWheel::Schedule(uint64_t id, Clock::time_point deadline) {
  Cancel(id);
  Entry e;
  e.deadline = deadline;
  e.slot = SlotFor(deadline);
  slots_[e.slot].push_back(id);
  entries_[id] = e;
}

void TimerWheel::Cancel(uint64_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  std::vector<uint64_t>& slot = slots_[it->second.slot];
  slot.erase(std::remove(slot.begin(), slot.end(), id), slot.end());
  entries_.erase(it);
}

void TimerWheel::ExpireUpTo(Clock::time_point now, std::vector<uint64_t>* expired) {
  if (entries_.empty()) {
    last_processed_tick_ =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_)
            .count() /
        tick_.count();
    return;
  }
  int64_t now_tick =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_)
          .count() /
      tick_.count();
  // Scan every slot the clock passed since the last call; if the loop
  // stalled for longer than a full wheel revolution, one pass over the
  // whole wheel suffices.
  int64_t span = now_tick - last_processed_tick_;
  if (span > static_cast<int64_t>(slots_.size())) {
    span = static_cast<int64_t>(slots_.size());
  }
  for (int64_t t = now_tick - span; t <= now_tick; ++t) {
    if (t < 0) continue;
    std::vector<uint64_t>& slot =
        slots_[static_cast<size_t>(t) % slots_.size()];
    for (size_t i = 0; i < slot.size();) {
      uint64_t id = slot[i];
      auto it = entries_.find(id);
      if (it == entries_.end()) {
        slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
        continue;
      }
      if (it->second.deadline <= now) {
        expired->push_back(id);
        entries_.erase(it);
        slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
        continue;
      }
      ++i;  // Wrapped-around entry from a later revolution; keep it.
    }
  }
  last_processed_tick_ = now_tick;
}

int TimerWheel::NextTimeoutMs(Clock::time_point now) const {
  (void)now;
  if (entries_.empty()) return -1;
  // Sleep at most one tick rather than computing the true minimum deadline:
  // that keeps this O(1) under 10k scheduled idle timers, and a tick is by
  // definition the wheel's acceptable lateness.
  return static_cast<int>(tick_.count());
}

// ---- WorkerPool ------------------------------------------------------------

WorkerPool::WorkerPool(size_t num_threads)
    : num_threads_(std::max<size_t>(num_threads, 1)) {}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Start() {
  {
    common::MutexLock lock(&mutex_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  threads_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    common::MutexLock lock(&mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void WorkerPool::Stop() {
  {
    common::MutexLock lock(&mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    queue_.clear();
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  common::MutexLock lock(&mutex_);
  started_ = false;
}

void WorkerPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(&mutex_);
      while (queue_.empty() && !stopping_) {
        // CondVar::Wait returns void (same name as Poller::Wait).
        // galaxy-lint: allow(status-consumed)
        work_available_.Wait(&mutex_);
      }
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// ---- EventLoop -------------------------------------------------------------

EventLoop::EventLoop(const Options& options)
    : options_(options), timers_(options.timer_tick, options.timer_slots) {}

EventLoop::~EventLoop() {
  if (wakeup_read_fd_ >= 0) ::close(wakeup_read_fd_);
  if (wakeup_write_fd_ >= 0) ::close(wakeup_write_fd_);
}

Status EventLoop::Init() {
  poller_ = MakePoller(options_.use_epoll);
  int fds[2];
  if (::pipe(fds) < 0) {
    return Status::Internal("pipe: " + std::string(::strerror(errno)));
  }
  wakeup_read_fd_ = fds[0];
  wakeup_write_fd_ = fds[1];
  Status s = SetNonBlocking(wakeup_read_fd_);
  if (s.ok()) s = SetNonBlocking(wakeup_write_fd_);
  if (!s.ok()) return s;
  return poller_->Add(wakeup_read_fd_, /*want_read=*/true,
                      /*want_write=*/false);
}

void EventLoop::Post(std::function<void()> fn) {
  bool need_wakeup = false;
  {
    common::MutexLock lock(&post_mutex_);
    posted_.push_back(std::move(fn));
    if (!wakeup_pending_) {
      wakeup_pending_ = true;
      need_wakeup = true;
    }
  }
  if (need_wakeup && wakeup_write_fd_ >= 0) {
    char b = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    ssize_t rc = ::write(wakeup_write_fd_, &b, 1);
    (void)rc;
  }
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  // Empty post purely to wake the loop out of Wait().
  Post([] {});
}

void EventLoop::DrainWakeupPipe() {
  char buf[64];
  while (::read(wakeup_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    common::MutexLock lock(&post_mutex_);
    tasks.swap(posted_);
    wakeup_pending_ = false;
  }
  for (auto& t : tasks) t();
}

Status EventLoop::AddFd(int fd, FdHandler* handler, bool want_read,
                        bool want_write) {
  Status s = poller_->Add(fd, want_read, want_write);
  if (s.ok()) handlers_[fd] = handler;
  return s;
}

Status EventLoop::UpdateFd(int fd, bool want_read, bool want_write) {
  return poller_->Update(fd, want_read, want_write);
}

void EventLoop::RemoveFd(int fd) {
  poller_->Remove(fd);
  handlers_.erase(fd);
}

void EventLoop::ScheduleTimer(uint64_t id,
                              TimerWheel::Clock::time_point deadline) {
  timers_.Schedule(id, deadline);
}

void EventLoop::CancelTimer(uint64_t id) { timers_.Cancel(id); }

void EventLoop::SetTimerCallback(std::function<void(uint64_t)> cb) {
  timer_callback_ = std::move(cb);
}

const char* EventLoop::poller_name() const {
  return poller_ ? poller_->name() : "none";
}

void EventLoop::Run() {
  // Run's thread IS the reactor thread for the rest of this function.
  ClaimLoopThreadRole();
  GALAXY_CHECK(poller_ != nullptr) << "EventLoop::Init not called";
  std::vector<ReadyEvent> events;
  std::vector<uint64_t> expired;
  while (!stopping_.load(std::memory_order_acquire)) {
    events.clear();
    int timeout_ms = timers_.NextTimeoutMs(TimerWheel::Clock::now());
    if (timeout_ms < 0) timeout_ms = 1000;  // Re-check stopping_ regularly.
    Status s = poller_->Wait(timeout_ms, &events);
    if (!s.ok()) {
      std::fprintf(stderr, "galaxy event loop: %s\n", s.ToString().c_str());
      break;
    }
    for (const ReadyEvent& ev : events) {
      if (ev.fd == wakeup_read_fd_) {
        DrainWakeupPipe();
        continue;
      }
      // Re-look-up per callback: an earlier callback this iteration (or a
      // posted task) may have removed and closed this fd.
      auto it = handlers_.find(ev.fd);
      if (it == handlers_.end()) continue;
      FdHandler* h = it->second;
      if (ev.readable) h->OnReadable();
      if (ev.writable && handlers_.count(ev.fd)) h->OnWritable();
      if (ev.hangup && !ev.readable && handlers_.count(ev.fd)) h->OnHangup();
    }
    RunPostedTasks();
    expired.clear();
    timers_.ExpireUpTo(TimerWheel::Clock::now(), &expired);
    if (timer_callback_) {
      for (uint64_t id : expired) timer_callback_(id);
    }
  }
  // Final drain so Stop()-time posts (e.g. response completions) are not
  // leaked while connections still hold references into the loop.
  RunPostedTasks();
}

}  // namespace galaxy::server
