#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "common/str_util.h"
#include "relation/csv.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace galaxy::server {

namespace {

HttpResponse JsonError(int http_status, const Status& status) {
  return JsonErrorResponse(http_status, status);
}

/// HTTP mapping of the library's Status codes, mirroring the CLI's exit
/// codes: usage errors (exit 2) -> 4xx, control-plane trips under strict
/// mode (exit 1) -> 408, everything unexpected -> 500.
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return 408;
    case StatusCode::kUnimplemented:
      return 501;
    default:
      return 500;
  }
}

std::string ValueToJson(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return std::to_string(value.AsInt64());
    case ValueType::kDouble: {
      const double d = value.AsDouble();
      if (d != d || d == std::numeric_limits<double>::infinity() ||
          d == -std::numeric_limits<double>::infinity()) {
        return "null";  // JSON has no NaN/Inf
      }
      return FormatDouble(d, 12);
    }
    case ValueType::kString:
      return std::string("\"") + JsonEscape(value.AsString()) + "\"";
  }
  return "null";
}

std::string TableToJson(const Table& table, bool degraded) {
  std::string out = "{\"columns\": [";
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ", ";
    out += "\"" + JsonEscape(table.schema().column(c).name) + "\"";
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r > 0) out += ", ";
    out += "[";
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ", ";
      out += ValueToJson(table.at(r, c));
    }
    out += "]";
  }
  out += "], \"row_count\": " + std::to_string(table.num_rows());
  out += ", \"quality\": \"";
  out += degraded ? "approximate-superset" : "exact";
  out += "\", \"degraded\": ";
  out += degraded ? "true" : "false";
  out += "}\n";
  return out;
}

Result<std::string> TableToCsv(const Table& table) {
  std::ostringstream out;
  GALAXY_RETURN_IF_ERROR(WriteCsv(table, out));
  return out.str();
}

Result<uint64_t> ParseUintHeader(const HttpRequest& request,
                                 std::string_view name) {
  const std::string* raw = request.FindHeader(name);
  if (raw == nullptr) return uint64_t{0};
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(raw->c_str(), &end, 10);
  if (errno != 0 || end != raw->c_str() + raw->size() || raw->empty()) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a non-negative integer");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

Server::Server(sql::Database* db, const ServerOptions& options)
    : db_(db),
      options_(options),
      admission_(options.admission),
      cache_(options.cache_entries, options.cache_bytes),
      start_time_(std::chrono::steady_clock::now()) {
  requests_total_ = metrics_.AddCounter(
      "galaxy_http_requests_total", "HTTP requests received");
  connections_total_ = metrics_.AddCounter(
      "galaxy_connections_total", "TCP connections accepted");
  queries_total_ =
      metrics_.AddCounter("galaxy_queries_total", "POST /query requests");
  updates_total_ =
      metrics_.AddCounter("galaxy_updates_total", "POST /update requests");
  rejected_total_ = metrics_.AddCounter(
      "galaxy_admission_rejected_total",
      "queries turned away by admission control (429)");
  degraded_total_ = metrics_.AddCounter(
      "galaxy_degraded_results_total",
      "queries answered with a sound approximate superset (206)");
  cache_hits_ = metrics_.AddCounter("galaxy_cache_hits_total",
                                    "result-cache hits");
  cache_misses_ = metrics_.AddCounter("galaxy_cache_misses_total",
                                      "result-cache misses");
  parse_errors_total_ = metrics_.AddCounter(
      "galaxy_sql_parse_errors_total", "queries rejected by the SQL parser");
  sky_record_comparisons_ = metrics_.AddCounter(
      "galaxy_skyline_record_comparisons_total",
      "record-level dominance tests inside aggregate-skyline steps");
  sky_group_pairs_ = metrics_.AddCounter(
      "galaxy_skyline_group_pairs_total",
      "group pairs classified inside aggregate-skyline steps");
  sky_mbb_shortcuts_ = metrics_.AddCounter(
      "galaxy_skyline_mbb_shortcuts_total",
      "group pairs decided by the MBB corner test alone");
  sky_stopped_early_ = metrics_.AddCounter(
      "galaxy_skyline_stopped_early_total",
      "group pairs ended early by the stopping rule");
  sky_chunks_stolen_ = metrics_.AddCounter(
      "galaxy_skyline_chunks_stolen_total",
      "work-stealing rebalances in parallel skyline runs");
  for (int code : {200, 206, 400, 404, 405, 408, 413, 429, 500, 501, 503,
                   505}) {
    responses_by_code_[code] = metrics_.AddCounter(
        "galaxy_http_responses_total", "HTTP responses by status code",
        "{code=\"" + std::to_string(code) + "\"}");
  }
  responses_other_ = metrics_.AddCounter(
      "galaxy_http_responses_total", "HTTP responses by status code",
      "{code=\"other\"}");
  query_latency_ = metrics_.AddHistogram(
      "galaxy_query_latency_seconds",
      "end-to-end /query latency (admission wait included)");
  active_queries_ =
      metrics_.AddGauge("galaxy_active_queries", "queries executing now");
  queue_depth_ = metrics_.AddGauge("galaxy_queue_depth",
                                   "queries waiting for an execution slot");
  cache_entries_gauge_ =
      metrics_.AddGauge("galaxy_result_cache_entries", "cached results");
  cache_hit_ratio_ = metrics_.AddGauge(
      "galaxy_cache_hit_ratio_percent",
      "result-cache hits per hundred lookups since start");
  cache_evictions_ = metrics_.AddGauge("galaxy_cache_evictions_total",
                                       "result-cache LRU evictions");
  cache_invalidations_ = metrics_.AddGauge(
      "galaxy_cache_invalidations_total",
      "result-cache entries dropped because a table version changed");
  uptime_seconds_ =
      metrics_.AddGauge("galaxy_uptime_seconds", "seconds since start");
  qps_ = metrics_.AddGauge("galaxy_qps",
                           "average requests per second since start");
  wal_appends_total_ = metrics_.AddCounter(
      "galaxy_wal_appends_total", "update records made durable in the WAL");
  wal_bytes_total_ = metrics_.AddCounter(
      "galaxy_wal_bytes_total", "bytes of durable WAL records (headers included)");
  durability_errors_total_ = metrics_.AddCounter(
      "galaxy_durability_errors_total",
      "updates refused (503) because the WAL could not be written, plus "
      "failed snapshot rotations");
  view_refreshes_total_ = metrics_.AddCounter(
      "galaxy_view_refreshes_total",
      "incremental skyline-view maintenance passes (one per read that "
      "found pending deltas, however many it drained)");
  view_deltas_total_ = metrics_.AddCounter(
      "galaxy_view_deltas_total", "update deltas queued for the skyline view");
  wal_fsync_seconds_ = metrics_.AddHistogram(
      "galaxy_wal_fsync_seconds", "WAL fdatasync latency");
  snapshot_duration_seconds_ = metrics_.AddHistogram(
      "galaxy_snapshot_duration_seconds",
      "snapshot rotation latency (encode, write, fsync, rename, cleanup)");
  recovery_replayed_records_ = metrics_.AddGauge(
      "galaxy_recovery_replayed_records",
      "WAL records replayed by the last crash recovery");
  view_pending_deltas_ = metrics_.AddGauge(
      "galaxy_view_pending_deltas",
      "update deltas queued but not yet applied to the skyline view");
  connections_open_ =
      metrics_.AddGauge("galaxy_connections_open", "TCP connections open now");
  connections_idle_closed_ = metrics_.AddCounter(
      "galaxy_connections_idle_closed",
      "connections closed because no complete request arrived within the "
      "idle window (slowloris guard included)");
  read_stall_seconds_ = metrics_.AddHistogram(
      "galaxy_read_stall_seconds",
      "time responses spent blocked on peers that were not reading "
      "(per-connection backpressure stalls, event mode)");
}

void Server::AttachDurability(storage::DurabilityManager* durability) {
  durability_ = durability;
  if (durability_ != nullptr) {
    recovery_replayed_records_->Set(static_cast<int64_t>(
        durability_->recovery_info().replayed_records));
  }
}

storage::DurabilityMetricsHooks Server::DurabilityHooks() {
  storage::DurabilityMetricsHooks hooks;
  hooks.on_wal_append = [this](uint64_t bytes) {
    wal_appends_total_->Inc();
    wal_bytes_total_->Inc(bytes);
  };
  hooks.on_wal_fsync = [this](double seconds) {
    wal_fsync_seconds_->Observe(static_cast<uint64_t>(seconds * 1e6));
  };
  hooks.on_snapshot = [this](double seconds) {
    snapshot_duration_seconds_->Observe(static_cast<uint64_t>(seconds * 1e6));
  };
  return hooks;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("server already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Internal("bind(" + options_.host + ":" +
                                     std::to_string(options_.port) +
                                     "): " + strerror(errno));
    ::close(fd);
    return status;
  }
  // Deep backlog: under a C10K connect ramp the SYN burst easily overruns
  // the old 128; the kernel clamps to net.core.somaxconn.
  if (::listen(fd, 4096) != 0) {
    Status status = Status::Internal("listen(): " + std::string(strerror(errno)));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status =
        Status::Internal("getsockname(): " + std::string(strerror(errno)));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);

  EventEngineOptions engine_options;
  engine_options.workers = options_.io_workers;
  engine_options.use_epoll = options_.use_epoll;
  engine_options.idle_timeout = options_.idle_timeout;
  engine_options.max_output_buffer = options_.max_output_buffer;
  ConnectionMetrics conn_metrics;
  conn_metrics.connections_open = connections_open_;
  conn_metrics.connections_total = connections_total_;
  conn_metrics.idle_closed = connections_idle_closed_;
  conn_metrics.read_stall_seconds = read_stall_seconds_;
  engine_ = std::make_unique<EventEngine>(
      engine_options,
      [this](const HttpRequest& request) { return Handle(request); },
      [this](const HttpResponse& response) { CountResponse(response); },
      conn_metrics);
  Status started = engine_->Start(listen_fd_);
  if (!started.ok()) {
    engine_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    return started;
  }
  return Status::OK();
}

void Server::Stop() {
  if (listen_fd_ < 0 && engine_ == nullptr) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  if (engine_ != nullptr) {
    engine_->Stop();
    engine_.reset();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

HttpResponse Server::Handle(const HttpRequest& request) {
  requests_total_->Inc();
  HttpResponse response;
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      response = JsonError(405, Status::InvalidArgument("use GET /healthz"));
    } else {
      response.content_type = "text/plain";
      response.body = "ok\n";
    }
  } else if (request.path == "/metrics") {
    if (request.method != "GET") {
      response = JsonError(405, Status::InvalidArgument("use GET /metrics"));
    } else {
      response = HandleMetrics();
    }
  } else if (request.path == "/query") {
    if (request.method != "POST") {
      response = JsonError(405, Status::InvalidArgument("use POST /query"));
    } else {
      const auto begin = std::chrono::steady_clock::now();
      response = HandleQuery(request);
      query_latency_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - begin)
              .count()));
    }
  } else if (request.path == "/update") {
    if (request.method != "POST") {
      response = JsonError(405, Status::InvalidArgument("use POST /update"));
    } else {
      response = HandleUpdate(request);
    }
  } else if (request.path == "/skyline") {
    if (request.method != "GET") {
      response = JsonError(405, Status::InvalidArgument("use GET /skyline"));
    } else {
      response = HandleSkyline();
    }
  } else {
    response =
        JsonError(404, Status::NotFound("no such endpoint: " + request.path));
  }
  CountResponse(response);
  return response;
}

void Server::CountResponse(const HttpResponse& response) {
  auto it = responses_by_code_.find(response.status);
  (it != responses_by_code_.end() ? it->second : responses_other_)->Inc();
}

HttpResponse Server::HandleQuery(const HttpRequest& request) {
  queries_total_->Inc();
  const std::string sql(StrTrim(request.body));
  if (sql.empty()) {
    return JsonError(
        400, Status::InvalidArgument("empty body; send SQL as the body"));
  }
  const std::string* accept = request.FindHeader("Accept");
  const bool want_csv =
      accept != nullptr && accept->find("text/csv") != std::string::npos;
  const std::string cache_key =
      NormalizeSql(sql) + (want_csv ? "\ncsv" : "\njson");

  // Cache hits are served before admission control: they cost a map lookup,
  // so turning them away under overload would only add load.
  if (std::shared_ptr<const CachedResponse> hit =
          cache_.Lookup(cache_key, *db_)) {
    cache_hits_->Inc();
    HttpResponse response;
    response.content_type = hit->content_type;
    response.body = hit->body;
    response.extra_headers.emplace_back("X-Galaxy-Cache", "hit");
    response.extra_headers.emplace_back("X-Galaxy-Quality", "exact");
    return response;
  }
  cache_misses_->Inc();

  switch (admission_.Acquire()) {
    case AdmissionController::Outcome::kAdmitted:
      break;
    case AdmissionController::Outcome::kRejected:
    case AdmissionController::Outcome::kTimedOut: {
      rejected_total_->Inc();
      queue_depth_->Set(static_cast<int64_t>(admission_.queued()));
      HttpResponse response = JsonError(
          429, Status::ResourceExhausted(
                   "server overloaded; queue full or wait timed out"));
      response.extra_headers.emplace_back("Retry-After", "1");
      return response;
    }
  }
  struct SlotRelease {
    Server* server;
    ~SlotRelease() {
      server->admission_.Release();
      server->active_queries_->Set(
          static_cast<int64_t>(server->admission_.active()));
      server->queue_depth_->Set(
          static_cast<int64_t>(server->admission_.queued()));
    }
  } release{this};
  active_queries_->Set(static_cast<int64_t>(admission_.active()));
  queue_depth_->Set(static_cast<int64_t>(admission_.queued()));

  // Capture dependency versions BEFORE executing: if a concurrent /update
  // lands mid-query the entry records the pre-update version and the next
  // lookup invalidates it — stale on the safe side.
  Result<std::unique_ptr<sql::SelectStmt>> stmt = sql::Parse(sql);
  if (!stmt.ok()) {
    parse_errors_total_->Inc();
    return JsonError(400, stmt.status());
  }
  std::vector<std::pair<std::string, uint64_t>> deps;
  for (const std::string& table : CollectReferencedTables(**stmt)) {
    Result<uint64_t> version = db_->TableVersion(table);
    if (version.ok()) deps.emplace_back(table, *version);
  }

  // ---- Execution controls from headers. ----------------------------------
  Result<uint64_t> timeout_ms = ParseUintHeader(request, "X-Galaxy-Timeout-Ms");
  if (!timeout_ms.ok()) return JsonError(400, timeout_ms.status());
  Result<uint64_t> max_comparisons =
      ParseUintHeader(request, "X-Galaxy-Max-Comparisons");
  if (!max_comparisons.ok()) return JsonError(400, max_comparisons.status());
  const std::string* strict = request.FindHeader("X-Galaxy-Strict");
  const bool strict_mode =
      strict != nullptr && *strict != "0" && !EqualsIgnoreCase(*strict, "false");

  core::ExecutionContext exec_storage;
  core::ExecutionContext* exec = nullptr;
  uint64_t effective_timeout_ms = *timeout_ms;
  if (effective_timeout_ms == 0 && options_.default_timeout.count() > 0) {
    effective_timeout_ms =
        static_cast<uint64_t>(options_.default_timeout.count());
  }
  if (effective_timeout_ms > 0) {
    exec_storage.set_timeout(std::chrono::milliseconds(effective_timeout_ms));
    exec = &exec_storage;
  }
  if (*max_comparisons > 0) {
    exec_storage.set_max_comparisons(*max_comparisons);
    exec = &exec_storage;
  }

  sql::ExecOptions exec_options;
  exec_options.exec = exec;
  exec_options.allow_approximate = !strict_mode;
  sql::ExecStats stats;
  Result<Table> result = db_->Query(sql, exec_options, &stats);
  if (!result.ok()) {
    return JsonError(HttpStatusFor(result.status()), result.status());
  }

  sky_record_comparisons_->Inc(stats.skyline_stats.record_comparisons);
  sky_group_pairs_->Inc(stats.skyline_stats.group_pairs_classified);
  sky_mbb_shortcuts_->Inc(stats.skyline_stats.mbb_shortcuts);
  sky_stopped_early_->Inc(stats.skyline_stats.stopped_early);
  sky_chunks_stolen_->Inc(stats.skyline_stats.chunks_stolen);

  const bool degraded =
      stats.skyline_quality == core::ResultQuality::kApproximateSuperset;
  HttpResponse response;
  if (want_csv) {
    Result<std::string> csv = TableToCsv(*result);
    if (!csv.ok()) return JsonError(500, csv.status());
    response.content_type = "text/csv";
    response.body = std::move(*csv);
  } else {
    response.body = TableToJson(*result, degraded);
  }
  response.extra_headers.emplace_back("X-Galaxy-Cache", "miss");
  response.extra_headers.emplace_back(
      "X-Galaxy-Quality", degraded ? "approximate-superset" : "exact");
  if (degraded) {
    // A degraded answer depends on how far this run got before its
    // deadline, not just on the data — never cached.
    response.status = 206;
    degraded_total_->Inc();
  } else {
    cache_.Insert(cache_key, std::move(deps),
                  CachedResponse{response.body, response.content_type});
  }
  return response;
}

HttpResponse Server::HandleUpdate(const HttpRequest& request) {
  updates_total_->Inc();
  const std::string* table_name = request.FindParam("table");
  if (table_name == nullptr || table_name->empty()) {
    return JsonError(
        400, Status::InvalidArgument("missing ?table= query parameter"));
  }
  std::string op = "insert";
  if (const std::string* p = request.FindParam("op")) op = *p;
  if (op != "insert" && op != "remove") {
    return JsonError(400,
                     Status::InvalidArgument("op must be insert or remove"));
  }
  const bool insert = op == "insert";

  // Serialize read-modify-write cycles; concurrent queries keep reading
  // their pinned snapshots meanwhile.
  common::MutexLock update_lock(&update_mutex_);
  Result<std::shared_ptr<const Table>> snapshot = db_->GetTable(*table_name);
  if (!snapshot.ok()) return JsonError(404, snapshot.status());
  const Table& table = **snapshot;

  Result<Row> row = ParseCsvRowForSchema(table.schema(), request.body);
  if (!row.ok()) return JsonError(400, row.status());

  // Copy-on-write install at column granularity: the new snapshot clones
  // the typed column vectors with one row appended/removed, never boxing
  // the table through rows.
  Result<Table> next_table =
      insert ? table.CopyWithAppended(*row) : table.CopyWithRemoved(*row);
  if (!next_table.ok()) {
    int code =
        next_table.status().code() == StatusCode::kNotFound ? 404 : 400;
    return JsonError(code, next_table.status());
  }

  // Validate the change against the incremental view BEFORE logging or
  // installing anything, so a failure (e.g. NULL in a skyline attribute)
  // rejects the update instead of desynchronizing view and table. Only
  // the O(d) validation runs now; the O(records · d) maintenance is
  // deferred to the next reader (DrainViewDeltas), so the delta is queued
  // only after the durable ack below.
  std::optional<PendingDelta> delta;
  {
    common::MutexLock view_lock(&view_mutex_);
    if (view_ != nullptr &&
        view_->config.table == AsciiLower(*table_name)) {
      Result<PendingDelta> validated = ValidateViewDelta(*view_, *row, insert);
      if (!validated.ok()) return JsonError(400, validated.status());
      delta = std::move(*validated);
    }
  }

  // The durable ack: the row reaches the WAL (per the fsync policy)
  // before the client hears 200. On any durability failure the update is
  // refused and nothing is applied — the WAL stays poisoned, so every
  // later update is refused too until an operator restarts the server
  // (recovery then truncates the torn tail and serving resumes clean).
  if (durability_ != nullptr) {
    storage::UpdateRecord record;
    record.table = AsciiLower(*table_name);
    record.insert = insert;
    record.row_csv = request.body;
    Status logged = durability_->LogUpdate(record);
    if (!logged.ok()) {
      durability_errors_total_->Inc();
      return JsonError(503, logged);
    }
  }

  if (delta.has_value()) {
    common::MutexLock view_lock(&view_mutex_);
    if (view_ != nullptr &&
        view_->config.table == AsciiLower(*table_name)) {
      view_->pending.push_back(std::move(*delta));
      view_deltas_total_->Inc();
      view_pending_deltas_->Set(static_cast<int64_t>(view_->pending.size()));
    }
  }

  const size_t num_rows = next_table->num_rows();
  const uint64_t version = db_->Register(*table_name, std::move(*next_table));

  if (durability_ != nullptr && options_.snapshot_every > 0 &&
      ++updates_since_snapshot_ >= options_.snapshot_every) {
    // Inline rotation: bounded WAL growth in exchange for one slow update
    // per window. Failure (disk full, ...) keeps the previous generation
    // intact and appends continue against the old WAL.
    Status rotated = durability_->Snapshot();
    if (rotated.ok()) {
      updates_since_snapshot_ = 0;
    } else {
      durability_errors_total_->Inc();
    }
  }

  std::string body = "{\"table\": \"" + JsonEscape(AsciiLower(*table_name)) +
                     "\", \"op\": \"" + op +
                     "\", \"version\": " + std::to_string(version) +
                     ", \"num_rows\": " + std::to_string(num_rows) + "}\n";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

Status Server::ApplyToView(ViewState* view, const Table& table,
                           const Row& row, bool insert) {
  (void)table;
  const Value& group_value = row[view->group_col];
  const std::string label = group_value.ToString();
  Point point(view->attr_cols.size());
  for (size_t a = 0; a < view->attr_cols.size(); ++a) {
    const Value& cell = row[view->attr_cols[a]];
    GALAXY_ASSIGN_OR_RETURN(double v, cell.ToDouble());
    point[a] = v * view->signs[a];
  }
  auto it = view->group_ids.find(label);
  if (it == view->group_ids.end()) {
    if (!insert) {
      return Status::NotFound("no group " + label + " in the skyline view");
    }
    it = view->group_ids.emplace(label, view->inc.AddGroup(label)).first;
  }
  if (insert) return view->inc.AddRecord(it->second, point);
  return view->inc.RemoveRecord(it->second, point);
}

Result<Server::PendingDelta> Server::ValidateViewDelta(const ViewState& view,
                                                       const Row& row,
                                                       bool insert) {
  PendingDelta delta;
  delta.label = row[view.group_col].ToString();
  delta.insert = insert;
  delta.point.resize(view.attr_cols.size());
  for (size_t a = 0; a < view.attr_cols.size(); ++a) {
    GALAXY_ASSIGN_OR_RETURN(double v, row[view.attr_cols[a]].ToDouble());
    delta.point[a] = v * view.signs[a];
  }
  // No eager group-existence check for removes: a remove only reaches
  // here after matching a live table row, and every live row's group is
  // (or, once earlier deltas drain, will be) in the view — the view
  // mirrors the table's update history exactly.
  return delta;
}

Status Server::DrainViewDeltas(ViewState* view) {
  if (view->pending.empty()) return Status::OK();
  for (size_t i = 0; i < view->pending.size(); ++i) {
    const PendingDelta& delta = view->pending[i];
    Status applied;
    auto it = view->group_ids.find(delta.label);
    if (it == view->group_ids.end() && !delta.insert) {
      // Unreachable for acked updates (see ValidateViewDelta); means the
      // view and table have desynchronized.
      applied = Status::Internal("view drain: no group " + delta.label);
    } else {
      if (it == view->group_ids.end()) {
        it = view->group_ids
                 .emplace(delta.label, view->inc.AddGroup(delta.label))
                 .first;
      }
      applied = delta.insert ? view->inc.AddRecord(it->second, delta.point)
                             : view->inc.RemoveRecord(it->second, delta.point);
    }
    if (!applied.ok()) {
      // Keep the applied prefix out and drop the poisoned delta so a
      // retry does not re-apply earlier records.
      view->pending.erase(view->pending.begin(),
                          view->pending.begin() + static_cast<ptrdiff_t>(i) +
                              1);
      view_pending_deltas_->Set(static_cast<int64_t>(view->pending.size()));
      return applied;
    }
  }
  view->pending.clear();
  view_refreshes_total_->Inc();
  view_pending_deltas_->Set(0);
  return Status::OK();
}

Status Server::EnableSkylineView(const SkylineViewConfig& config) {
  if (!(config.gamma >= 0.5 && config.gamma <= 1.0)) {
    return Status::InvalidArgument("view gamma must be in [0.5, 1]");
  }
  if (config.attrs.empty()) {
    return Status::InvalidArgument("view needs at least one attribute");
  }
  GALAXY_ASSIGN_OR_RETURN(std::shared_ptr<const Table> snapshot,
                          db_->GetTable(config.table));
  const Table& table = *snapshot;

  auto view = std::make_unique<ViewState>(ViewState{
      config, core::IncrementalAggregateSkyline(config.attrs.size(),
                                                config.gamma),
      {}, 0, {}, {}});
  view->config.table = AsciiLower(config.table);
  GALAXY_ASSIGN_OR_RETURN(view->group_col,
                          table.schema().IndexOf(config.group_column));
  for (const std::string& raw : config.attrs) {
    const bool minimize = !raw.empty() && raw[0] == '-';
    const std::string name = minimize ? raw.substr(1) : raw;
    GALAXY_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(name));
    view->attr_cols.push_back(col);
    view->signs.push_back(minimize ? -1.0 : 1.0);
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    // One-time view seeding, not a query hot path: boxing each row keeps
    // ApplyToView's row-shaped delta interface.
    // galaxy-lint: allow(row-major-access)
    GALAXY_RETURN_IF_ERROR(ApplyToView(view.get(), table, table.MaterializeRow(r),
                                       /*insert=*/true));
  }
  common::MutexLock lock(&view_mutex_);
  view_ = std::move(view);
  return Status::OK();
}

HttpResponse Server::HandleSkyline() {
  common::MutexLock lock(&view_mutex_);
  if (view_ == nullptr) {
    return JsonError(
        404, Status::NotFound(
                 "no skyline view configured (galaxy_served --view ...)"));
  }
  // Deferred maintenance: apply whatever /update queued since the last
  // read, as one refresh pass.
  Status drained = DrainViewDeltas(view_.get());
  if (!drained.ok()) return JsonError(500, drained);
  std::string body = "{\"table\": \"" + JsonEscape(view_->config.table) +
                     "\", \"group_column\": \"" +
                     JsonEscape(view_->config.group_column) +
                     "\", \"gamma\": " + FormatDouble(view_->inc.gamma(), 6) +
                     ", \"skyline\": [";
  bool first = true;
  for (uint32_t id : view_->inc.Skyline()) {
    if (!first) body += ", ";
    first = false;
    body += "\"" + JsonEscape(view_->inc.label(id)) + "\"";
  }
  body += "], \"num_groups\": " + std::to_string(view_->inc.num_groups()) +
          ", \"total_records\": " +
          std::to_string(view_->inc.total_records()) + "}\n";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse Server::HandleMetrics() {
  // Pull-style gauges are refreshed at scrape time.
  const ResultCache::Stats cache_stats = cache_.stats();
  cache_entries_gauge_->Set(static_cast<int64_t>(cache_.size()));
  cache_evictions_->Set(static_cast<int64_t>(cache_stats.evictions));
  cache_invalidations_->Set(static_cast<int64_t>(cache_stats.invalidations));
  const uint64_t lookups = cache_stats.hits + cache_stats.misses;
  cache_hit_ratio_->Set(
      lookups == 0
          ? 0
          : static_cast<int64_t>(cache_stats.hits * 100 / lookups));
  active_queries_->Set(static_cast<int64_t>(admission_.active()));
  queue_depth_->Set(static_cast<int64_t>(admission_.queued()));
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  uptime_seconds_->Set(static_cast<int64_t>(uptime));
  qps_->Set(uptime <= 0.0
                ? 0
                : static_cast<int64_t>(
                      static_cast<double>(requests_total_->value()) / uptime));

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = metrics_.Render();
  return response;
}

}  // namespace galaxy::server
