#include "server/http_fuzz.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "server/connection.h"
#include "server/http.h"

namespace galaxy::server {
namespace {

// Deterministic splitmix64 stream — the same generator the other fuzz
// modules use, so campaigns reproduce exactly from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

std::string EscapeForReport(std::string_view text) {
  std::string out;
  for (char c : text.substr(0, 200)) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7f && c != '\\' && c != '"') {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", u);
      out += buf;
    }
  }
  if (text.size() > 200) out += "...";
  return out;
}

std::string RandomToken(Rng& rng, size_t max_len) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~";
  std::string out;
  size_t len = 1 + rng.Below(max_len);
  for (size_t i = 0; i < len; ++i) {
    out += kChars[rng.Below(sizeof(kChars) - 1)];
  }
  return out;
}

struct GeneratedRequest {
  std::string wire;
  std::string method;
  std::string path_component;  // first path segment, pre-encoding
  std::string body;
};

// Builds a syntactically valid request the parser is REQUIRED to accept.
GeneratedRequest GenerateValid(Rng& rng) {
  static const char* kMethods[] = {"GET", "POST", "PUT", "DELETE", "HEAD"};
  GeneratedRequest req;
  req.method = kMethods[rng.Below(5)];
  req.path_component = RandomToken(rng, 12);

  std::string target = "/" + req.path_component;
  size_t params = rng.Below(3);
  for (size_t i = 0; i < params; ++i) {
    target += (i == 0 ? '?' : '&');
    target += RandomToken(rng, 6) + "=" + RandomToken(rng, 8);
  }

  bool has_body = rng.Below(2) == 0;
  if (has_body) {
    size_t len = rng.Below(64);
    for (size_t i = 0; i < len; ++i) {
      req.body += static_cast<char>(rng.Below(256));
    }
  }

  const char* eol = rng.Below(2) == 0 ? "\r\n" : "\n";
  req.wire = req.method + " " + target + " HTTP/1.1" + eol;
  req.wire += "Host: localhost" + std::string(eol);
  size_t extra = rng.Below(4);
  for (size_t i = 0; i < extra; ++i) {
    req.wire += "X-" + RandomToken(rng, 8) + ": " + RandomToken(rng, 16) + eol;
  }
  if (has_body || rng.Below(2) == 0) {
    req.wire += "Content-Length: " + std::to_string(req.body.size()) + eol;
  } else if (!req.body.empty()) {
    req.body.clear();
  }
  req.wire += eol;
  req.wire += req.body;
  return req;
}

std::string Mutate(Rng& rng, std::string input) {
  size_t edits = 1 + rng.Below(4);
  for (size_t e = 0; e < edits && !input.empty(); ++e) {
    switch (rng.Below(4)) {
      case 0:  // flip a byte
        input[rng.Below(input.size())] = static_cast<char>(rng.Below(256));
        break;
      case 1:  // delete a span
      {
        size_t pos = rng.Below(input.size());
        size_t len = 1 + rng.Below(8);
        input.erase(pos, len);
        break;
      }
      case 2:  // duplicate a span
      {
        size_t pos = rng.Below(input.size());
        size_t len = 1 + rng.Below(8);
        input.insert(pos, input.substr(pos, len));
        break;
      }
      default:  // splice in noise
      {
        std::string noise;
        size_t len = 1 + rng.Below(8);
        for (size_t i = 0; i < len; ++i) {
          noise += static_cast<char>(rng.Below(256));
        }
        input.insert(rng.Below(input.size() + 1), noise);
        break;
      }
    }
  }
  return input;
}

std::string Garbage(Rng& rng) {
  std::string out;
  size_t len = rng.Below(256);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng.Below(256));
  }
  return out;
}

}  // namespace

std::string FuzzConnection(uint64_t seed, int iterations,
                           ConnFuzzStats* stats) {
  Rng rng(seed ^ 0x436f6e6eULL);  // "Conn"
  ConnFuzzStats local;
  ConnFuzzStats* s = stats != nullptr ? stats : &local;

  auto fail = [](const std::string& what, std::string_view input) {
    return what + " stream=\"" + EscapeForReport(input) + "\"";
  };

  for (int iter = 0; iter < iterations; ++iter) {
    ++s->streams;

    // A pipeline of valid requests, optionally ending in adversarial bytes
    // whose framing the machine must refuse to guess past.
    size_t num_valid = rng.Below(4);
    std::vector<GeneratedRequest> expected;
    std::string stream;
    for (size_t i = 0; i < num_valid; ++i) {
      expected.push_back(GenerateValid(rng));
      stream += expected.back().wire;
    }
    enum class Tail { kClean, kPartial, kAdversarial };
    Tail tail = static_cast<Tail>(rng.Below(3));
    std::string partial;
    if (tail == Tail::kPartial) {
      GeneratedRequest next = GenerateValid(rng);
      partial = next.wire.substr(0, rng.Below(next.wire.size()));
      stream += partial;
    } else if (tail == Tail::kAdversarial) {
      // Mutated request or raw garbage; may still parse, may poison.
      stream += rng.Below(2) == 0 ? Mutate(rng, GenerateValid(rng).wire)
                                  : Garbage(rng);
    }

    // Feed the stream across randomized read boundaries: mostly small
    // chunks, frequently single bytes — the splits a slow peer or a
    // 1-byte-at-a-time test produces.
    ConnectionMachine machine(/*max_buffered_bytes=*/1 << 20);
    size_t offset = 0;
    size_t extracted = 0;
    bool saw_error = false;
    while (offset < stream.size() || offset == 0) {
      size_t chunk_len = rng.Below(3) == 0
                             ? 1
                             : 1 + rng.Below(64);
      chunk_len = std::min(chunk_len, stream.size() - offset);
      machine.Append(std::string_view(stream).substr(offset, chunk_len));
      offset += chunk_len;
      ++s->chunks;

      // Drain everything extractable at this boundary, like the event
      // loop's dispatch cycle does.
      for (;;) {
        HttpRequest req;
        ConnectionMachine::Next next = machine.TakeRequest(&req);
        if (next == ConnectionMachine::Next::kNeedMore) {
          if (machine.poisoned()) {
            return fail("kNeedMore from a poisoned machine", stream);
          }
          break;
        }
        if (next == ConnectionMachine::Next::kError) {
          saw_error = true;
          ++s->poisoned;
          if (!machine.poisoned()) {
            return fail("kError without poisoning", stream);
          }
          if (machine.error_status().ok()) {
            return fail("kError with ok Status", stream);
          }
          if (machine.http_status() < 400 || machine.http_status() > 599) {
            return fail("kError with non-4xx/5xx status", stream);
          }
          break;
        }
        ++s->requests;
        if (extracted < expected.size()) {
          const GeneratedRequest& want = expected[extracted];
          if (req.method != want.method ||
              req.path != "/" + want.path_component ||
              req.body != want.body) {
            return fail("pipelined request #" + std::to_string(extracted) +
                            " extracted out of order or corrupted",
                        stream);
          }
        }
        ++extracted;
      }
      if (saw_error || stream.empty()) break;
    }

    if (!saw_error && extracted < expected.size()) {
      return fail("only " + std::to_string(extracted) + " of " +
                      std::to_string(expected.size()) +
                      " pipelined requests extracted",
                  stream);
    }
    if (tail == Tail::kClean && !saw_error && extracted != expected.size()) {
      return fail("clean stream fabricated an extra request", stream);
    }
    if (tail == Tail::kPartial && !saw_error &&
        machine.buffered_bytes() != partial.size()) {
      return fail("partial tail not held back intact", stream);
    }

    // Stickiness: once poisoned, every further interaction must keep
    // reporting the same error — pipelined bytes after a framing error
    // are unreachable by design.
    if (saw_error) {
      int status = machine.http_status();
      machine.Append("GET / HTTP/1.1\r\n\r\n");
      HttpRequest req;
      if (machine.TakeRequest(&req) != ConnectionMachine::Next::kError) {
        return fail("poisoned machine accepted new bytes", stream);
      }
      if (machine.http_status() != status) {
        return fail("poisoned machine changed its status code", stream);
      }
    }
  }

  // Overflow backstop: a terminator-free flood past the cap must poison
  // with 413 rather than buffer without bound.
  {
    ++s->streams;
    ConnectionMachine machine(/*max_buffered_bytes=*/4096);
    std::string flood(8192, 'A');
    machine.Append(flood);
    HttpRequest req;
    if (machine.TakeRequest(&req) != ConnectionMachine::Next::kError ||
        machine.http_status() != 413) {
      return fail("input overflow did not poison with 413", flood);
    }
    ++s->poisoned;
  }

  return "";
}

std::string FuzzHttp(uint64_t seed, int iterations, HttpFuzzStats* stats) {
  Rng rng(seed ^ 0x48747470ULL);  // "Http"
  HttpFuzzStats local;
  HttpFuzzStats* s = stats != nullptr ? stats : &local;

  auto fail = [](const std::string& what, std::string_view input) {
    return what + " input=\"" + EscapeForReport(input) + "\"";
  };

  // Feeds one input through the parser and checks the universal contract:
  // a definite state, consumed within bounds, error details present on
  // kError. Returns "" or a violation description.
  auto check = [&](std::string_view input) -> std::string {
    ++s->inputs;
    HttpRequest req;
    HttpParseResult result = ParseHttpRequest(input, &req);
    switch (result.state) {
      case ParseState::kDone:
        ++s->parsed;
        if (result.consumed > input.size()) {
          return fail("consumed > input size on kDone", input);
        }
        if (req.method.empty() || req.target.empty()) {
          return fail("kDone with empty method or target", input);
        }
        break;
      case ParseState::kNeedMore:
        ++s->need_more;
        if (result.consumed != 0) {
          return fail("kNeedMore consumed bytes", input);
        }
        break;
      case ParseState::kError:
        ++s->errors;
        if (result.error.ok()) {
          return fail("kError with ok Status", input);
        }
        if (result.http_status < 400 || result.http_status > 599) {
          return fail("kError with non-4xx/5xx http_status", input);
        }
        break;
    }
    return "";
  };

  for (int iter = 0; iter < iterations; ++iter) {
    // 1. A valid request must round-trip exactly.
    GeneratedRequest gen = GenerateValid(rng);
    {
      ++s->inputs;
      HttpRequest req;
      HttpParseResult result = ParseHttpRequest(gen.wire, &req);
      if (result.state != ParseState::kDone) {
        return fail("valid request did not parse", gen.wire);
      }
      ++s->parsed;
      if (result.consumed != gen.wire.size()) {
        return fail("valid request consumed wrong byte count", gen.wire);
      }
      if (req.method != gen.method) {
        return fail("method mismatch", gen.wire);
      }
      if (req.path != "/" + gen.path_component) {
        return fail("path mismatch", gen.wire);
      }
      if (req.body != gen.body) {
        return fail("body mismatch", gen.wire);
      }
    }

    // 2. Every proper prefix is incomplete or an error — never a full parse
    //    that consumes more than it was given.
    size_t cut = rng.Below(gen.wire.size());
    {
      std::string_view prefix(gen.wire.data(), cut);
      ++s->inputs;
      HttpRequest req;
      HttpParseResult result = ParseHttpRequest(prefix, &req);
      if (result.state == ParseState::kDone) {
        ++s->parsed;
        if (result.consumed > prefix.size()) {
          return fail("prefix parse consumed past the cut", prefix);
        }
      } else if (result.state == ParseState::kNeedMore) {
        ++s->need_more;
      } else {
        ++s->errors;
      }
    }

    // 3. Mutations and raw garbage must terminate with a definite verdict.
    std::string violation = check(Mutate(rng, gen.wire));
    if (!violation.empty()) return violation;
    violation = check(Garbage(rng));
    if (!violation.empty()) return violation;
  }
  return "";
}

}  // namespace galaxy::server
