#include "server/admission.h"

namespace galaxy::server {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

AdmissionController::Outcome AdmissionController::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (active_ < options_.max_concurrent) {
    ++active_;
    return Outcome::kAdmitted;
  }
  if (queued_ >= options_.queue_capacity) {
    return Outcome::kRejected;
  }
  ++queued_;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.queue_timeout;
  const bool got_slot = slot_free_.wait_until(lock, deadline, [&] {
    return active_ < options_.max_concurrent;
  });
  --queued_;
  if (!got_slot) {
    return Outcome::kTimedOut;
  }
  ++active_;
  return Outcome::kAdmitted;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  slot_free_.notify_one();
}

size_t AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

}  // namespace galaxy::server
