#include "server/admission.h"

namespace galaxy::server {

using common::MutexLock;

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

AdmissionController::Outcome AdmissionController::Acquire() {
  MutexLock lock(&mutex_);
  if (active_ < options_.max_concurrent) {
    ++active_;
    return Outcome::kAdmitted;
  }
  if (queued_ >= options_.queue_capacity) {
    return Outcome::kRejected;
  }
  ++queued_;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.queue_timeout;
  // Standard condition re-check loop (the predicate reads guarded state,
  // so it lives here where the analysis sees the lock, not in a lambda).
  while (active_ >= options_.max_concurrent) {
    if (slot_free_.WaitUntil(&mutex_, deadline) == std::cv_status::timeout &&
        active_ >= options_.max_concurrent) {
      --queued_;
      return Outcome::kTimedOut;
    }
  }
  --queued_;
  ++active_;
  return Outcome::kAdmitted;
}

void AdmissionController::Release() {
  {
    MutexLock lock(&mutex_);
    --active_;
  }
  slot_free_.NotifyOne();
}

size_t AdmissionController::active() const {
  MutexLock lock(&mutex_);
  return active_;
}

size_t AdmissionController::queued() const {
  MutexLock lock(&mutex_);
  return queued_;
}

}  // namespace galaxy::server
