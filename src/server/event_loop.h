#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace galaxy::server {

/// One readiness notification from a Poller.
struct ReadyEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Peer hung up or the fd errored; the owner should tear the fd down
  /// (a final read usually still drains buffered bytes first).
  bool hangup = false;
};

/// Readiness-notification backend. Two implementations sit behind this
/// interface: an epoll(7) poller (Linux) and a portable poll(2) fallback,
/// so the event loop itself never touches either API directly. All methods
/// are single-threaded (the loop thread); Wait may block.
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` for readiness tracking with the given interest set.
  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  /// Replaces the interest set of a registered fd.
  virtual Status Update(int fd, bool want_read, bool want_write) = 0;
  /// Stops tracking `fd`. Safe to call for fds about to be closed.
  virtual void Remove(int fd) = 0;
  /// Blocks up to `timeout_ms` (-1 = indefinitely, 0 = poll) and appends
  /// every ready fd to `out`. Returns OK on timeout with no events.
  virtual Status Wait(int timeout_ms, std::vector<ReadyEvent>* out) = 0;
  /// "epoll" or "poll" — surfaced in logs and tests.
  virtual const char* name() const = 0;
};

/// Builds the best available poller: epoll when compiled on Linux and
/// `prefer_epoll` is set, the portable poll(2) backend otherwise. Both obey
/// the same interface and the same tests run against each.
std::unique_ptr<Poller> MakePoller(bool prefer_epoll);

/// A hashed timing wheel for coarse connection deadlines (idle/slowloris
/// timeouts). O(1) schedule/cancel; expiry scans only the slots the clock
/// actually passed. Deadlines fire at tick granularity — late by at most
/// one tick, never early. Single-threaded (the loop thread).
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// `tick` is the wheel's resolution, `slots` its circumference; deadlines
  /// further out than tick*slots simply wrap and are re-examined (their
  /// stored absolute deadline keeps them from firing early).
  TimerWheel(std::chrono::milliseconds tick, size_t slots);

  /// Schedules (or reschedules) timer `id` to fire at `deadline`.
  void Schedule(uint64_t id, Clock::time_point deadline);
  /// Removes timer `id` if present.
  void Cancel(uint64_t id);
  /// Appends every timer whose deadline has passed by `now` to `expired`
  /// and removes it from the wheel.
  void ExpireUpTo(Clock::time_point now, std::vector<uint64_t>* expired);
  /// Milliseconds the loop may sleep before the next possible expiry
  /// (-1 = no timers scheduled). Never overshoots a pending deadline by
  /// more than one tick.
  int NextTimeoutMs(Clock::time_point now) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Clock::time_point deadline;
    size_t slot = 0;
  };

  size_t SlotFor(Clock::time_point deadline) const;

  const std::chrono::milliseconds tick_;
  std::vector<std::vector<uint64_t>> slots_;
  std::map<uint64_t, Entry> entries_;
  /// The last slot ExpireUpTo fully processed, as an absolute tick count.
  int64_t last_processed_tick_;
  const Clock::time_point epoch_;
};

/// A small fixed-size pool of threads executing queued closures in FIFO
/// order. This is the serving layer's query-execution pool: the event loop
/// hands parsed requests to it so a query blocking on an
/// ExecutionContext deadline (or on admission control) never stalls
/// network I/O. Deliberately separate from core::ThreadPool — that pool's
/// Run is not reentrant and the parallel skyline operator already executes
/// on it, so queries must not originate there.
class WorkerPool {
 public:
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Start();
  /// Enqueues `task`. Tasks submitted after Stop() (or still queued when
  /// Stop() runs) are discarded — by then every connection is closing and
  /// their results would be dropped anyway.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);
  /// Finishes the currently running tasks, discards the rest, joins.
  void Stop() EXCLUDES(mutex_);

  size_t num_threads() const { return num_threads_; }

 private:
  void WorkerMain() EXCLUDES(mutex_);

  const size_t num_threads_;
  common::Mutex mutex_;
  common::CondVar work_available_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  bool started_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

/// Annotation-only capability standing for "this code runs on the reactor
/// (EventLoop::Run) thread". There is nothing to lock at runtime: the
/// reactor claims the role where it holds by construction, loop-thread-only
/// state is GUARDED_BY(loop_thread_role), and loop-thread-only methods are
/// REQUIRES(loop_thread_role) — so clang -Wthread-safety proves that no
/// worker or external thread reaches them, the same way it proves mutex
/// discipline. A single process-wide token suffices: one call chain never
/// services two loops' fds.
class CAPABILITY("reactor thread") LoopThreadRole {};

/// The token named by every reactor-thread annotation.
inline LoopThreadRole loop_thread_role;

/// Tells the analysis the current context is the reactor thread. Only call
/// where that is true by construction: the top of EventLoop::Run, inside
/// closures handed to Post/SetTimerCallback (they execute on the loop
/// thread), or while the loop thread provably does not exist (before the
/// loop starts, after it is joined).
inline void ClaimLoopThreadRole() ASSERT_CAPABILITY(loop_thread_role) {}

/// The reactor: one thread multiplexing every connection's readiness
/// through a Poller, with cross-thread task posting (wakeup pipe) and a
/// timer wheel for connection deadlines.
///
/// Threading model: Run() executes on a dedicated thread; AddFd/UpdateFd/
/// RemoveFd/ScheduleTimer/CancelTimer and handler callbacks all happen on
/// that thread only (enforced via loop_thread_role). Post() and Stop() may
/// be called from any thread — they enqueue under a mutex and wake the
/// loop through the pipe. Worker threads therefore never touch connection
/// state directly; they Post a closure that the loop runs.
class EventLoop {
 public:
  /// Per-fd callbacks. Implemented by connections and the acceptor.
  /// Callbacks run on the loop thread; a handler may RemoveFd + close its
  /// own fd inside a callback (the dispatch loop re-checks registration).
  /// Callbacks always fire on the loop thread; implementations claim the
  /// thread role in their bodies (ClaimLoopThreadRole) rather than via a
  /// REQUIRES on these virtuals, so overrides stay attribute-free.
  class FdHandler {
   public:
    virtual void OnReadable() = 0;
    virtual void OnWritable() = 0;
    virtual void OnHangup() = 0;

   protected:
    ~FdHandler() = default;
  };

  struct Options {
    bool use_epoll = true;
    /// Timer wheel resolution; idle deadlines fire within one tick.
    std::chrono::milliseconds timer_tick{20};
    size_t timer_slots = 512;
  };

  explicit EventLoop(const Options& options);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the poller and wakeup pipe. Must succeed before Run().
  Status Init();

  /// Blocks dispatching events until Stop(). Call on a dedicated thread.
  void Run() EXCLUDES(post_mutex_);

  /// Requests Run() to return after the current iteration. Any thread.
  void Stop();

  /// Enqueues `fn` to run on the loop thread; wakes the loop. Any thread.
  /// Safe before Run() starts and after it returns (the closure is then
  /// simply never executed).
  void Post(std::function<void()> fn) EXCLUDES(post_mutex_);

  // ---- Loop-thread-only API. ---------------------------------------------
  Status AddFd(int fd, FdHandler* handler, bool want_read, bool want_write)
      REQUIRES(loop_thread_role);
  Status UpdateFd(int fd, bool want_read, bool want_write)
      REQUIRES(loop_thread_role);
  void RemoveFd(int fd) REQUIRES(loop_thread_role);

  /// Arms (or re-arms) timer `id`; on expiry the timer callback runs on
  /// the loop thread.
  void ScheduleTimer(uint64_t id, TimerWheel::Clock::time_point deadline)
      REQUIRES(loop_thread_role);
  void CancelTimer(uint64_t id) REQUIRES(loop_thread_role);
  void SetTimerCallback(std::function<void(uint64_t)> cb)
      REQUIRES(loop_thread_role);

  const char* poller_name() const;

 private:
  void DrainWakeupPipe();
  void RunPostedTasks() EXCLUDES(post_mutex_);

  const Options options_;
  std::unique_ptr<Poller> poller_;
  TimerWheel timers_ GUARDED_BY(loop_thread_role);
  std::function<void(uint64_t)> timer_callback_ GUARDED_BY(loop_thread_role);
  std::map<int, FdHandler*> handlers_ GUARDED_BY(loop_thread_role);

  int wakeup_read_fd_ = -1;
  int wakeup_write_fd_ = -1;

  std::atomic<bool> stopping_{false};
  common::Mutex post_mutex_;
  std::vector<std::function<void()>> posted_ GUARDED_BY(post_mutex_);
  bool wakeup_pending_ GUARDED_BY(post_mutex_) = false;
};

}  // namespace galaxy::server
