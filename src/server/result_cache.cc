#include "server/result_cache.h"

#include <algorithm>
#include <cctype>

#include "common/str_util.h"

namespace galaxy::server {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out += c;
      // '' is the SQL escape for a quote inside the literal.
      if (c == '\'' && !(i + 1 < sql.size() && sql[i + 1] == '\'')) {
        in_string = false;
      } else if (c == '\'') {
        out += sql[++i];
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out += c;
    } else {
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

namespace {

void CollectFromExpr(const sql::Expr* expr, std::vector<std::string>* out);

void CollectFromStmt(const sql::SelectStmt& stmt,
                     std::vector<std::string>* out) {
  for (const sql::TableRef& ref : stmt.from) {
    out->push_back(AsciiLower(ref.table_name));
  }
  for (const sql::SelectItem& item : stmt.items) {
    CollectFromExpr(item.expr.get(), out);
  }
  CollectFromExpr(stmt.where.get(), out);
  for (const sql::ExprPtr& g : stmt.group_by) CollectFromExpr(g.get(), out);
  CollectFromExpr(stmt.having.get(), out);
  for (const sql::SkylineItem& s : stmt.skyline) {
    CollectFromExpr(s.expr.get(), out);
  }
  for (const sql::OrderItem& o : stmt.order_by) {
    CollectFromExpr(o.expr.get(), out);
  }
  if (stmt.union_next != nullptr) CollectFromStmt(*stmt.union_next, out);
}

void CollectFromExpr(const sql::Expr* expr, std::vector<std::string>* out) {
  if (expr == nullptr) return;
  CollectFromExpr(expr->left.get(), out);
  CollectFromExpr(expr->right.get(), out);
  for (const sql::ExprPtr& a : expr->args) CollectFromExpr(a.get(), out);
  for (const sql::ExprPtr& v : expr->in_list) CollectFromExpr(v.get(), out);
  CollectFromExpr(expr->case_base.get(), out);
  for (const sql::ExprPtr& w : expr->case_when) CollectFromExpr(w.get(), out);
  for (const sql::ExprPtr& t : expr->case_then) CollectFromExpr(t.get(), out);
  CollectFromExpr(expr->case_else.get(), out);
  if (expr->subquery != nullptr) CollectFromStmt(*expr->subquery, out);
}

}  // namespace

std::vector<std::string> CollectReferencedTables(const sql::SelectStmt& stmt) {
  std::vector<std::string> tables;
  CollectFromStmt(stmt, &tables);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  return tables;
}

ResultCache::ResultCache(size_t max_entries, size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

std::shared_ptr<const CachedResponse> ResultCache::Lookup(
    const std::string& key, const sql::Database& db) {
  common::MutexLock lock(&mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  for (const auto& [table, version] : it->second.deps) {
    Result<uint64_t> current = db.TableVersion(table);
    if (!current.ok() || *current != version) {
      ++stats_.invalidations;
      ++stats_.misses;
      EraseLocked(it);
      return nullptr;
    }
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.response;
}

void ResultCache::Insert(const std::string& key,
                         std::vector<std::pair<std::string, uint64_t>> deps,
                         CachedResponse response) {
  if (response.body.size() > max_bytes_) return;  // would evict everything
  common::MutexLock lock(&mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it);
  lru_.push_front(key);
  total_bytes_ += response.body.size();
  entries_.emplace(
      key, Entry{std::make_shared<const CachedResponse>(std::move(response)),
                 std::move(deps), lru_.begin()});
  EvictLocked();
}

ResultCache::Stats ResultCache::stats() const {
  common::MutexLock lock(&mutex_);
  return stats_;
}

size_t ResultCache::size() const {
  common::MutexLock lock(&mutex_);
  return entries_.size();
}

void ResultCache::EvictLocked() {
  while (!entries_.empty() &&
         (entries_.size() > max_entries_ || total_bytes_ > max_bytes_)) {
    auto it = entries_.find(lru_.back());
    ++stats_.evictions;
    EraseLocked(it);
  }
}

void ResultCache::EraseLocked(std::map<std::string, Entry>::iterator it) {
  total_bytes_ -= it->second.response->body.size();
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

}  // namespace galaxy::server
