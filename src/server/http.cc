#include "server/http.h"

#include <cctype>
#include <cstdio>

#include "common/str_util.h"

namespace galaxy::server {

namespace {

// Finds the end of a line starting at `pos`: returns the index of the first
// byte of the terminator and sets `next` past it. Accepts CRLF and LF.
bool FindLineEnd(std::string_view input, size_t pos, size_t* end,
                 size_t* next) {
  for (size_t i = pos; i < input.size(); ++i) {
    if (input[i] == '\n') {
      *end = (i > pos && input[i - 1] == '\r') ? i - 1 : i;
      *next = i + 1;
      return true;
    }
  }
  return false;
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || u >= 127) return false;
    switch (c) {
      case '(': case ')': case '<': case '>': case '@':
      case ',': case ';': case ':': case '\\': case '"':
      case '/': case '[': case ']': case '?': case '=':
      case '{': case '}':
        return false;
      default:
        break;
    }
  }
  return true;
}

HttpParseResult Error(int http_status, std::string message) {
  HttpParseResult result;
  result.state = ParseState::kError;
  result.http_status = http_status;
  result.error = Status::ParseError(std::move(message));
  return result;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Splits the request target into path + decoded query parameters.
void SplitTarget(const std::string& target, HttpRequest* out) {
  size_t q = target.find('?');
  out->path = UrlDecode(std::string_view(target).substr(0, q));
  if (q == std::string::npos) return;
  std::string_view query = std::string_view(target).substr(q + 1);
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    size_t eq = pair.find('=');
    if (!pair.empty()) {
      if (eq == std::string_view::npos) {
        out->query_params.emplace_back(UrlDecode(pair), "");
      } else {
        out->query_params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                       UrlDecode(pair.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

const std::string* HttpRequest::FindParam(std::string_view name) const {
  for (const auto& [key, value] : query_params) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::WantsClose() const {
  const std::string* connection = FindHeader("Connection");
  if (connection != nullptr) {
    if (EqualsIgnoreCase(StrTrim(*connection), "close")) return true;
    if (EqualsIgnoreCase(StrTrim(*connection), "keep-alive")) return false;
  }
  return version == "HTTP/1.0";
}

HttpParseResult ParseHttpRequest(std::string_view input, HttpRequest* out) {
  *out = HttpRequest();

  // ---- Request line. ------------------------------------------------------
  size_t end = 0;
  size_t pos = 0;
  if (!FindLineEnd(input, 0, &end, &pos)) {
    if (input.size() > kMaxHeaderBytes) {
      return Error(413, "request line exceeds the header size limit");
    }
    return HttpParseResult{};  // kNeedMore
  }
  std::string_view line = input.substr(0, end);
  if (line.size() > kMaxHeaderBytes) {
    return Error(413, "request line exceeds the header size limit");
  }
  size_t sp1 = line.find(' ');
  size_t sp2 = (sp1 == std::string_view::npos)
                   ? std::string_view::npos
                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Error(400, "malformed request line");
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) return Error(400, "malformed method token");
  if (target.empty()) return Error(400, "empty request target");
  for (char c : target) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= ' ' || u == 127) return Error(400, "control byte in target");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Error(505, "unsupported HTTP version: " + std::string(version));
  }
  out->method = std::string(method);
  out->target = std::string(target);
  out->version = std::string(version);

  // ---- Headers. -----------------------------------------------------------
  uint64_t content_length = 0;
  bool has_content_length = false;
  while (true) {
    if (pos > kMaxHeaderBytes) {
      return Error(413, "headers exceed the size limit");
    }
    size_t line_start = pos;
    if (!FindLineEnd(input, pos, &end, &pos)) {
      if (input.size() - line_start > kMaxHeaderBytes) {
        return Error(413, "headers exceed the size limit");
      }
      return HttpParseResult{};  // kNeedMore
    }
    if (end == line_start) break;  // blank line: end of headers
    std::string_view header = input.substr(line_start, end - line_start);
    size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Error(400, "malformed header line");
    }
    std::string_view name = header.substr(0, colon);
    std::string_view value = StrTrim(header.substr(colon + 1));
    if (!IsToken(name)) return Error(400, "malformed header name");
    for (char c : value) {
      unsigned char u = static_cast<unsigned char>(c);
      if (u < ' ' && c != '\t') return Error(400, "control byte in header");
    }
    if (out->headers.size() >= kMaxHeaderCount) {
      return Error(413, "too many headers");
    }
    out->headers.emplace_back(std::string(name), std::string(value));

    if (EqualsIgnoreCase(name, "Transfer-Encoding")) {
      return Error(501, "Transfer-Encoding is not supported");
    }
    if (EqualsIgnoreCase(name, "Content-Length")) {
      if (has_content_length) {
        return Error(400, "duplicate Content-Length");
      }
      if (value.empty() || value.size() > 18) {
        return Error(400, "malformed Content-Length");
      }
      uint64_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Error(400, "malformed Content-Length");
        }
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
      }
      content_length = parsed;
      has_content_length = true;
    }
  }

  // ---- Body. --------------------------------------------------------------
  if (content_length > kMaxBodyBytes) {
    return Error(413, "body exceeds the size limit");
  }
  if (input.size() - pos < content_length) {
    return HttpParseResult{};  // kNeedMore
  }
  out->body = std::string(input.substr(pos, content_length));
  SplitTarget(out->target, out);

  HttpParseResult result;
  result.state = ParseState::kDone;
  result.consumed = pos + content_length;
  return result;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

HttpResponse JsonErrorResponse(int http_status, const Status& status) {
  HttpResponse response;
  response.status = http_status;
  response.body = std::string("{\"error\": \"") + JsonEscape(status.message()) +
                  "\", \"code\": \"" + StatusCodeToString(status.code()) +
                  "\"}\n";
  return response;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusText(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  if (response.close) out += "\r\nConnection: close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(text[i + 1]) * 16 +
                               HexDigit(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace galaxy::server
