#include "server/metrics.h"

#include <bit>
#include <cstdio>

namespace galaxy::server {

namespace {

std::string FormatSeconds(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", micros / 1e6);
  return buf;
}

}  // namespace

void Histogram::Observe(uint64_t micros) {
  // Bucket i covers (2^(i-1), 2^i] microseconds; micros == 0 lands in
  // bucket 0. bit_width(x) is 1 + floor(log2(x)).
  int bucket = micros <= 1 ? 0 : std::bit_width(micros - 1);
  if (bucket >= kNumBuckets) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

double Histogram::QuantileMicros(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperMicros(i - 1));
      const double upper = static_cast<double>(BucketUpperMicros(i));
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // Everything left is overflow: report the last finite bound.
  return static_cast<double>(BucketUpperMicros(kNumBuckets - 1));
}

Counter* MetricsRegistry::AddCounter(std::string name, std::string help,
                                     std::string labels) {
  common::MutexLock lock(&mutex_);
  counters_.push_back(NamedCounter{std::move(name), std::move(help),
                                   std::move(labels),
                                   std::make_unique<Counter>()});
  return counters_.back().counter.get();
}

Gauge* MetricsRegistry::AddGauge(std::string name, std::string help,
                                 std::string labels) {
  common::MutexLock lock(&mutex_);
  gauges_.push_back(NamedGauge{std::move(name), std::move(help),
                               std::move(labels),
                               std::make_unique<Gauge>()});
  return gauges_.back().gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(std::string name, std::string help) {
  common::MutexLock lock(&mutex_);
  histograms_.push_back(NamedHistogram{std::move(name), std::move(help),
                                       std::make_unique<Histogram>()});
  return histograms_.back().histogram.get();
}

std::string MetricsRegistry::Render() const {
  common::MutexLock lock(&mutex_);
  std::string out;
  out.reserve(4096);

  std::string last_name;
  auto header = [&](const std::string& name, const std::string& help,
                    const char* type) {
    // Metrics sharing a name (labeled series) get one HELP/TYPE block.
    if (name == last_name) return;
    last_name = name;
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
  };

  for (const NamedCounter& c : counters_) {
    header(c.name, c.help, "counter");
    out += c.name + c.labels + " " + std::to_string(c.counter->value()) + "\n";
  }
  for (const NamedGauge& g : gauges_) {
    header(g.name, g.help, "gauge");
    out += g.name + g.labels + " " + std::to_string(g.gauge->value()) + "\n";
  }
  for (const NamedHistogram& h : histograms_) {
    header(h.name, h.help, "histogram");
    const Histogram& hist = *h.histogram;
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += hist.bucket_count(i);
      out += h.name + "_bucket{le=\"" +
             FormatSeconds(
                 static_cast<double>(Histogram::BucketUpperMicros(i))) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " +
           std::to_string(hist.count()) + "\n";
    out += h.name + "_sum " +
           FormatSeconds(static_cast<double>(hist.sum_micros())) + "\n";
    out += h.name + "_count " + std::to_string(hist.count()) + "\n";
    // Companion quantile gauges so scrapers (and the CI smoke test) can
    // read p50/p99 without histogram_quantile().
    out += h.name + "_p50 " + FormatSeconds(hist.QuantileMicros(0.5)) + "\n";
    out += h.name + "_p99 " + FormatSeconds(hist.QuantileMicros(0.99)) + "\n";
  }
  return out;
}

}  // namespace galaxy::server
