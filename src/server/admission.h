#pragma once

#include <chrono>
#include <cstddef>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace galaxy::server {

struct AdmissionOptions {
  /// Queries executing at once; further arrivals wait in the queue.
  size_t max_concurrent = 4;
  /// Waiters allowed behind the executing queries; arrivals beyond this
  /// are rejected immediately (HTTP 429).
  size_t queue_capacity = 64;
  /// How long a queued query may wait for an execution slot before it is
  /// timed out (also answered 429 — by then the client's own deadline has
  /// typically passed anyway).
  std::chrono::milliseconds queue_timeout{2000};
};

/// Gates query execution: at most `max_concurrent` queries run, at most
/// `queue_capacity` wait, everyone else is turned away immediately. This
/// is the server's overload story — under a traffic spike the queue fills,
/// latecomers get a fast 429 instead of piling onto the thread pool, and
/// the queue bound keeps worst-case queueing delay proportional to
/// queue_capacity / throughput.
///
/// Thread safety: all methods may be called from any thread.
class AdmissionController {
 public:
  enum class Outcome {
    kAdmitted,  ///< caller owns an execution slot; must call Release()
    kRejected,  ///< queue full — reject now
    kTimedOut,  ///< waited queue_timeout without getting a slot
  };

  explicit AdmissionController(const AdmissionOptions& options);

  /// Tries to obtain an execution slot, waiting in the bounded queue if
  /// necessary. Only kAdmitted confers a slot (and the obligation to call
  /// Release()).
  Outcome Acquire() EXCLUDES(mutex_);

  /// Returns an execution slot obtained by a successful Acquire().
  void Release() EXCLUDES(mutex_);

  size_t active() const EXCLUDES(mutex_);
  size_t queued() const EXCLUDES(mutex_);

 private:
  const AdmissionOptions options_;
  mutable common::Mutex mutex_;
  common::CondVar slot_free_;
  size_t active_ GUARDED_BY(mutex_) = 0;
  size_t queued_ GUARDED_BY(mutex_) = 0;
};

}  // namespace galaxy::server
