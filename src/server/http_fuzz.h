#pragma once

#include <cstdint>
#include <string>

namespace galaxy::server {

/// Counters of one HTTP-parser fuzz campaign.
struct HttpFuzzStats {
  uint64_t inputs = 0;     ///< byte strings fed to the parser
  uint64_t parsed = 0;     ///< complete requests parsed
  uint64_t need_more = 0;  ///< judged an incomplete prefix
  uint64_t errors = 0;     ///< rejected as malformed/over-limit
};

/// Feeds `iterations` adversarial byte strings through ParseHttpRequest:
/// generated well-formed requests (which must round-trip: parse, match the
/// generated method/target/body, and consume exactly their own length),
/// their truncations (which must never parse as complete), mutations
/// (byte flips, splices, duplicated/deleted spans) and raw garbage — all
/// of which must yield a definite kDone/kNeedMore/kError without reading
/// out of bounds (run under ASan) and with `consumed` never exceeding the
/// input. Deterministic in `seed`. Returns "" when the contract held
/// everywhere, else a description of the first violation including the
/// offending input (escaped).
std::string FuzzHttp(uint64_t seed, int iterations,
                     HttpFuzzStats* stats = nullptr);

}  // namespace galaxy::server

