#pragma once

#include <cstdint>
#include <string>

namespace galaxy::server {

/// Counters of one HTTP-parser fuzz campaign.
struct HttpFuzzStats {
  uint64_t inputs = 0;     ///< byte strings fed to the parser
  uint64_t parsed = 0;     ///< complete requests parsed
  uint64_t need_more = 0;  ///< judged an incomplete prefix
  uint64_t errors = 0;     ///< rejected as malformed/over-limit
};

/// Feeds `iterations` adversarial byte strings through ParseHttpRequest:
/// generated well-formed requests (which must round-trip: parse, match the
/// generated method/target/body, and consume exactly their own length),
/// their truncations (which must never parse as complete), mutations
/// (byte flips, splices, duplicated/deleted spans) and raw garbage — all
/// of which must yield a definite kDone/kNeedMore/kError without reading
/// out of bounds (run under ASan) and with `consumed` never exceeding the
/// input. Deterministic in `seed`. Returns "" when the contract held
/// everywhere, else a description of the first violation including the
/// offending input (escaped).
std::string FuzzHttp(uint64_t seed, int iterations,
                     HttpFuzzStats* stats = nullptr);

/// Counters of one connection-state-machine fuzz campaign.
struct ConnFuzzStats {
  uint64_t streams = 0;    ///< byte streams fed to a fresh machine
  uint64_t chunks = 0;     ///< Append calls (randomized read boundaries)
  uint64_t requests = 0;   ///< complete requests extracted
  uint64_t poisoned = 0;   ///< streams that poisoned the machine
};

/// Feeds `iterations` randomized byte streams through ConnectionMachine,
/// the event engine's pure per-connection state machine. Each stream is a
/// pipeline of generated valid requests — optionally with a mutated or
/// garbage tail — delivered across randomized read-boundary splits (down
/// to one byte per Append). Asserts: the requests before any malformed
/// bytes are extracted intact and in pipeline order regardless of how the
/// stream was chunked; TakeRequest never fabricates a request from a
/// partial prefix; a parse error or input-buffer overflow poisons the
/// machine with a 4xx/5xx status and poisoning is sticky (bytes after a
/// framing error are never reinterpreted). Deterministic in `seed`.
/// Returns "" when the contract held everywhere, else a description of
/// the first violation.
std::string FuzzConnection(uint64_t seed, int iterations,
                           ConnFuzzStats* stats = nullptr);

}  // namespace galaxy::server

