#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace galaxy::server {

/// Hard limits of the request parser. Requests exceeding them are rejected
/// with a definite error (never unbounded buffering): the serving layer
/// reads untrusted bytes off the network, so every limit here is a
/// denial-of-service guard.
inline constexpr size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;
inline constexpr size_t kMaxHeaderCount = 100;

/// One parsed HTTP/1.1 request. Header names are matched
/// case-insensitively; `path` and `query_params` are the percent-decoded
/// split of the request target.
struct HttpRequest {
  std::string method;   ///< upper-case as sent (GET, POST, ...)
  std::string target;   ///< raw request target ("/query?x=1")
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  std::string path;  ///< target up to '?', percent-decoded
  std::vector<std::pair<std::string, std::string>> query_params;

  /// First header with the given case-insensitive name, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
  /// First query parameter with the given name, or nullptr.
  const std::string* FindParam(std::string_view name) const;
  /// True when the client asked to close the connection after this
  /// exchange (Connection: close, or HTTP/1.0 without keep-alive).
  bool WantsClose() const;
};

enum class ParseState {
  kDone,      ///< one full request parsed; `consumed` bytes used
  kNeedMore,  ///< the buffer holds a prefix of a valid request
  kError,     ///< malformed or over-limit; `error` + `http_status` say why
};

struct HttpParseResult {
  ParseState state = ParseState::kNeedMore;
  size_t consumed = 0;  ///< bytes of `input` forming the request (kDone)
  Status error;         ///< set when state == kError
  int http_status = 400;  ///< response code to send for kError (400/413/501)
};

/// Incremental HTTP/1.1 request parser: examines `input` (the bytes
/// buffered so far on a connection) and either produces one complete
/// request, asks for more bytes, or rejects. Tolerates both CRLF and bare
/// LF line endings. Bodies require Content-Length; Transfer-Encoding is
/// rejected with 501. Never reads past `input` and never consumes bytes of
/// a request it did not fully parse, so callers can append and retry.
HttpParseResult ParseHttpRequest(std::string_view input, HttpRequest* out);

/// One HTTP response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  bool close = false;  ///< send "Connection: close"
};

/// Standard reason phrase for the status codes the server emits.
const char* HttpStatusText(int status);

/// The server's uniform JSON error envelope:
/// {"error": "...", "code": "InvalidArgument"}. Shared between the request
/// router and the connection layers (both serving modes reject malformed
/// requests with the same body shape).
HttpResponse JsonErrorResponse(int http_status, const Status& status);

/// Renders status line + headers (Content-Type, Content-Length, extras,
/// Connection) + body.
std::string SerializeResponse(const HttpResponse& response);

/// Percent-decodes a URL component ('+' becomes a space, %XX a byte;
/// malformed escapes are kept literally).
std::string UrlDecode(std::string_view text);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

}  // namespace galaxy::server

