#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/status.h"
#include "server/event_loop.h"
#include "server/http.h"
#include "server/metrics.h"

namespace galaxy::server {

/// The pure (socket-free) half of a connection: an input byte stream fed in
/// arbitrary chunks, from which complete pipelined HTTP requests are
/// extracted in order. Separating this from fd handling makes the state
/// machine directly fuzzable (galaxy_fuzz --target=conn drives it with
/// randomized read-boundary splits).
///
/// Contract: bytes are only consumed when a full request parses; a parse
/// error (or input-buffer overflow) poisons the machine — the connection
/// answers with the error's status code and closes, mirroring what a
/// threaded server would do. Poisoning is sticky: pipelined bytes after a
/// malformed request are unreachable by design (their framing is unknown).
class ConnectionMachine {
 public:
  enum class Next {
    kRequest,   ///< one complete request extracted
    kNeedMore,  ///< buffer holds a (possibly empty) prefix of a request
    kError,     ///< malformed/over-limit; error_status()+http_status() say why
  };

  explicit ConnectionMachine(size_t max_buffered_bytes);

  /// Appends bytes read off the wire. Appending past max_buffered_bytes
  /// poisons the machine with 413 (the parser's own header/body limits
  /// normally trip first; this is the backstop for pathological pipelining).
  void Append(std::string_view bytes);

  /// Tries to extract the next complete request from the buffer head.
  Next TakeRequest(HttpRequest* out);

  bool poisoned() const { return poisoned_; }
  const Status& error_status() const { return error_; }
  int http_status() const { return http_status_; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Compact();

  const size_t max_buffered_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< parsed-and-taken prefix, reclaimed by Compact
  bool poisoned_ = false;
  Status error_;
  int http_status_ = 400;
};

/// Connection-level metric handles (all optional; owned by the server's
/// MetricsRegistry).
struct ConnectionMetrics {
  Gauge* connections_open = nullptr;
  Counter* connections_total = nullptr;
  Counter* idle_closed = nullptr;
  /// Time responses spent blocked on a peer that was not reading
  /// (send buffer full) — the backpressure signal.
  Histogram* read_stall_seconds = nullptr;
};

struct EventEngineOptions {
  /// Query-execution worker threads (separate from core::ThreadPool).
  size_t workers = 4;
  bool use_epoll = true;
  /// A connection is closed when no *complete* request arrives within this
  /// window — trickling partial bytes does not reset it (slowloris guard).
  std::chrono::milliseconds idle_timeout{10000};
  /// Backpressure threshold: while a connection's output buffer holds more
  /// than this, the loop stops reading it and stops dispatching its
  /// pipelined requests until the peer drains.
  size_t max_output_buffer = 1 << 20;
  /// Input-side cap per connection (backstop over the parser's limits).
  size_t max_input_buffer = kMaxHeaderBytes + kMaxBodyBytes + 4096;
  std::chrono::milliseconds timer_tick{20};
};

class EventEngine;

/// One accepted socket inside the event engine: owns the fd, the
/// ConnectionMachine, and the buffered output. All methods run on the loop
/// thread; query execution happens elsewhere and re-enters through
/// EventEngine::CompleteRequest (posted back by a worker).
class Connection final : public EventLoop::FdHandler {
 public:
  Connection(EventEngine* engine, uint64_t id, int fd, size_t max_input);

  // EventLoop::FdHandler (loop thread; bodies claim the role):
  void OnReadable() override;
  void OnWritable() override;
  void OnHangup() override;

  /// Queues a serialized response and starts flushing. `close_after` marks
  /// the connection for teardown once the buffer drains.
  void EnqueueResponse(std::string bytes, bool close_after)
      REQUIRES(loop_thread_role);

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  bool request_in_flight() const REQUIRES(loop_thread_role) {
    return request_in_flight_;
  }
  size_t output_bytes() const REQUIRES(loop_thread_role) {
    return output_.size() - output_offset_;
  }

 private:
  friend class EventEngine;

  /// Extracts + dispatches the next pipelined request if none is in flight
  /// and output is below the backpressure threshold.
  void MaybeDispatch() REQUIRES(loop_thread_role);
  /// Writes buffered output until EAGAIN/empty; manages EPOLLOUT interest,
  /// stall timing, and close-after-flush.
  void Flush() REQUIRES(loop_thread_role);
  /// Recomputes poller interest from buffer state (read paused while the
  /// peer is not draining output).
  void UpdateInterest() REQUIRES(loop_thread_role);

  EventEngine* const engine_;
  const uint64_t id_;
  const int fd_;
  ConnectionMachine machine_ GUARDED_BY(loop_thread_role);

  std::string output_ GUARDED_BY(loop_thread_role);
  size_t output_offset_ GUARDED_BY(loop_thread_role) = 0;
  bool want_read_ GUARDED_BY(loop_thread_role) = true;
  bool want_write_ GUARDED_BY(loop_thread_role) = false;
  bool request_in_flight_ GUARDED_BY(loop_thread_role) = false;
  bool close_after_flush_ GUARDED_BY(loop_thread_role) = false;
  bool peer_half_closed_ GUARDED_BY(loop_thread_role) = false;
  bool closing_ GUARDED_BY(loop_thread_role) = false;
  /// Set while the last write hit EAGAIN with data pending (peer stalled).
  /// Default-constructed to the clock's epoch.
  std::chrono::steady_clock::time_point stall_started_
      GUARDED_BY(loop_thread_role);
  bool stalled_ GUARDED_BY(loop_thread_role) = false;
};

/// The event-driven serving engine: an EventLoop on a dedicated thread
/// multiplexing the listen fd plus every connection, and a WorkerPool
/// running the request handler. The engine owns accepted fds; the listen
/// fd stays owned by the caller (Server), which also keeps the
/// bind/listen/port logic shared between serving modes.
class EventEngine {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Invoked (loop thread) for responses the engine originates itself —
  /// protocol errors the router never sees — so they still land in the
  /// per-code response counters. May be null.
  using ResponseObserver = std::function<void(const HttpResponse&)>;

  EventEngine(const EventEngineOptions& options, Handler handler,
              ResponseObserver count_response, ConnectionMetrics metrics);
  ~EventEngine();

  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// Starts the loop thread + workers, registers `listen_fd` (must already
  /// be listening and non-blocking) for accept readiness.
  Status Start(int listen_fd);

  /// Drains: stops accepting, joins the loop, finishes in-flight handler
  /// calls, closes every connection. Idempotent.
  void Stop();

  const char* poller_name() const { return loop_.poller_name(); }

 private:
  friend class Connection;

  class Acceptor final : public EventLoop::FdHandler {
   public:
    explicit Acceptor(EventEngine* engine) : engine_(engine) {}
    void OnReadable() override;
    void OnWritable() override {}
    void OnHangup() override {}

   private:
    EventEngine* const engine_;
  };

  void AcceptReady() REQUIRES(loop_thread_role);
  /// Hands a parsed request to the worker pool; the response is posted
  /// back to the loop and lands in CompleteRequest.
  void Dispatch(uint64_t conn_id, HttpRequest request)
      REQUIRES(loop_thread_role);
  /// Loop thread: delivers a worker-computed response to the connection
  /// (dropped silently if it closed in the meantime).
  void CompleteRequest(uint64_t conn_id, std::string response_bytes,
                       bool close_after) REQUIRES(loop_thread_role);
  /// Loop thread: tears down one connection.
  void CloseConnection(uint64_t conn_id, bool idle_close)
      REQUIRES(loop_thread_role);
  /// Re-arms the idle deadline (on accept and on each complete request).
  void TouchIdleDeadline(uint64_t conn_id) REQUIRES(loop_thread_role);
  void OnTimer(uint64_t conn_id) REQUIRES(loop_thread_role);

  const EventEngineOptions options_;
  const Handler handler_;
  const ResponseObserver count_response_;
  const ConnectionMetrics metrics_;

  EventLoop loop_;
  WorkerPool workers_;
  Acceptor acceptor_;
  int listen_fd_ = -1;
  std::thread loop_thread_;
  bool started_ = false;
  bool stopped_ = false;

  // The connection registry is loop-thread-only; the role capability makes
  // clang prove it (a worker touching connections_ is a build error).
  uint64_t next_conn_id_ GUARDED_BY(loop_thread_role) = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      GUARDED_BY(loop_thread_role);
};

}  // namespace galaxy::server
