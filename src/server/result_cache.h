#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace galaxy::server {

/// One cached rendered query response. Only exact results are cached
/// (degraded approximate-superset answers depend on the deadline that
/// produced them, not just on the data).
struct CachedResponse {
  std::string body;
  std::string content_type;
};

/// Canonical form of a SQL text for cache keying: whitespace runs collapse
/// to one space, case is folded outside single-quoted string literals, and
/// the result is trimmed — so "SELECT * FROM t" and "select  *  from T"
/// share a cache entry while 'Literal' spellings stay distinct.
std::string NormalizeSql(const std::string& sql);

/// Lower-cased names of every base table referenced by the statement —
/// FROM clauses of the statement itself, of each UNION member, and of
/// every subquery expression, recursively. The version set of these tables
/// is exactly what a cached result depends on.
std::vector<std::string> CollectReferencedTables(const sql::SelectStmt& stmt);

/// An LRU result cache keyed by normalized SQL + output format, validated
/// against catalog table versions (sql/catalog.h): an entry remembers the
/// (table, version) pairs it was computed from and is invalidated lazily
/// when any referenced table has been re-registered since. Because
/// versions increase monotonically, a stale entry can never be revived —
/// Property 2's update story turned into precise server-side invalidation.
///
/// Thread safety: all methods may be called from any thread (one mutex;
/// the critical sections are map lookups, far cheaper than executing a
/// query).
class ResultCache {
 public:
  /// `max_entries` bounds the entry count, `max_bytes` the total body
  /// bytes; the least-recently-used entries are evicted past either bound.
  ResultCache(size_t max_entries, size_t max_bytes);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      ///< LRU capacity evictions
    uint64_t invalidations = 0;  ///< entries dropped on version mismatch
  };

  /// Looks up `key`; validates the entry's table versions against `db` and
  /// drops the entry (miss + invalidation) if any referenced table changed
  /// or disappeared.
  std::shared_ptr<const CachedResponse> Lookup(const std::string& key,
                                               const sql::Database& db)
      EXCLUDES(mutex_);

  /// Inserts a response computed from the given (table, version) pairs.
  void Insert(const std::string& key,
              std::vector<std::pair<std::string, uint64_t>> deps,
              CachedResponse response) EXCLUDES(mutex_);

  Stats stats() const EXCLUDES(mutex_);
  size_t size() const EXCLUDES(mutex_);

 private:
  struct Entry {
    std::shared_ptr<const CachedResponse> response;
    std::vector<std::pair<std::string, uint64_t>> deps;
    std::list<std::string>::iterator lru_pos;
  };

  void EvictLocked() REQUIRES(mutex_);
  void EraseLocked(std::map<std::string, Entry>::iterator it)
      REQUIRES(mutex_);

  const size_t max_entries_;
  const size_t max_bytes_;

  mutable common::Mutex mutex_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  // Front = most recently used.
  std::list<std::string> lru_ GUARDED_BY(mutex_);
  size_t total_bytes_ GUARDED_BY(mutex_) = 0;
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace galaxy::server
