#include "server/connection.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/logging.h"

namespace galaxy::server {

// Every socket the engine touches is non-blocking (set at accept), so the
// recv/send calls below return EAGAIN instead of stalling the loop thread.
// galaxy-lint: allow-file(blocking-socket-io)
// galaxy-lint: allow-file(raw-file-io) -- ::close on sockets, not data files.

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK): " +
                            std::string(::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

// ---- ConnectionMachine -----------------------------------------------------

ConnectionMachine::ConnectionMachine(size_t max_buffered_bytes)
    : max_buffered_bytes_(max_buffered_bytes) {}

void ConnectionMachine::Append(std::string_view bytes) {
  if (poisoned_) return;  // Framing unknown past an error; drop the bytes.
  buffer_.append(bytes.data(), bytes.size());
  if (buffer_.size() - consumed_ > max_buffered_bytes_) {
    poisoned_ = true;
    error_ = Status::ResourceExhausted(
        "connection buffered more than " +
        std::to_string(max_buffered_bytes_) + " unparsed bytes");
    http_status_ = 413;
  }
}

void ConnectionMachine::Compact() {
  // Reclaim the taken prefix only once it dominates the buffer, so heavy
  // pipelining does not turn every TakeRequest into a memmove.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

ConnectionMachine::Next ConnectionMachine::TakeRequest(HttpRequest* out) {
  if (poisoned_) return Next::kError;
  std::string_view pending(buffer_.data() + consumed_,
                           buffer_.size() - consumed_);
  HttpParseResult parsed = ParseHttpRequest(pending, out);
  switch (parsed.state) {
    case ParseState::kDone:
      consumed_ += parsed.consumed;
      Compact();
      return Next::kRequest;
    case ParseState::kNeedMore:
      return Next::kNeedMore;
    case ParseState::kError:
      poisoned_ = true;
      error_ = parsed.error;
      http_status_ = parsed.http_status;
      return Next::kError;
  }
  return Next::kNeedMore;
}

// ---- Connection ------------------------------------------------------------

Connection::Connection(EventEngine* engine, uint64_t id, int fd,
                       size_t max_input)
    : engine_(engine), id_(id), fd_(fd), machine_(max_input) {}

void Connection::OnReadable() {
  ClaimLoopThreadRole();  // FdHandler callbacks run on the loop thread.
  if (closing_) return;
  char chunk[16384];
  bool peer_closed = false;
  for (;;) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      machine_.Append(std::string_view(chunk, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;  // Drain until EAGAIN; saves a poller round trip.
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    engine_->CloseConnection(id_, /*idle_close=*/false);
    return;
  }
  // On EOF the peer may still be reading (shutdown(SHUT_WR)); buffered
  // pipelined requests are still answered, then MaybeDispatch's kNeedMore
  // branch tears the connection down once everything drains.
  if (peer_closed) peer_half_closed_ = true;
  MaybeDispatch();
}

void Connection::OnWritable() {
  ClaimLoopThreadRole();  // FdHandler callbacks run on the loop thread.
  if (closing_) return;
  Flush();
}

void Connection::OnHangup() {
  ClaimLoopThreadRole();  // FdHandler callbacks run on the loop thread.
  if (closing_) return;
  engine_->CloseConnection(id_, /*idle_close=*/false);
}

void Connection::MaybeDispatch() {
  // close_after_flush_ covers the poisoned-machine case too: without it a
  // second call would extract kError again and enqueue a duplicate error
  // response.
  if (closing_ || request_in_flight_ || close_after_flush_) {
    UpdateInterest();
    return;
  }
  if (output_bytes() > engine_->options_.max_output_buffer) {
    // Backpressure: the peer is not draining responses; stop consuming its
    // pipeline until Flush gets the buffer back under the threshold.
    UpdateInterest();
    return;
  }
  HttpRequest request;
  switch (machine_.TakeRequest(&request)) {
    case ConnectionMachine::Next::kRequest:
      request_in_flight_ = true;
      engine_->TouchIdleDeadline(id_);
      engine_->Dispatch(id_, std::move(request));
      break;
    case ConnectionMachine::Next::kNeedMore:
      if (peer_half_closed_ && output_bytes() == 0) {
        // EOF with a dangling partial request and nothing left to flush.
        engine_->CloseConnection(id_, /*idle_close=*/false);
        return;
      }
      break;
    case ConnectionMachine::Next::kError: {
      HttpResponse response =
          JsonErrorResponse(machine_.http_status(), machine_.error_status());
      response.close = true;
      if (engine_->count_response_) engine_->count_response_(response);
      EnqueueResponse(SerializeResponse(response), /*close_after=*/true);
      return;  // EnqueueResponse may already have destroyed *this.
    }
  }
  UpdateInterest();
}

void Connection::EnqueueResponse(std::string bytes, bool close_after) {
  if (closing_) return;
  if (output_.empty() && output_offset_ == 0) {
    output_ = std::move(bytes);
  } else {
    output_.append(bytes);
  }
  if (close_after) close_after_flush_ = true;
  Flush();
}

void Connection::Flush() {
  while (output_offset_ < output_.size()) {
    ssize_t n = ::send(fd_, output_.data() + output_offset_,
                       output_.size() - output_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      output_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!stalled_) {
        stalled_ = true;
        stall_started_ = std::chrono::steady_clock::now();
      }
      break;
    }
    engine_->CloseConnection(id_, /*idle_close=*/false);
    return;
  }
  if (output_offset_ == output_.size()) {
    output_.clear();
    output_offset_ = 0;
    if (stalled_) {
      stalled_ = false;
      if (engine_->metrics_.read_stall_seconds != nullptr) {
        auto stalled_for =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - stall_started_);
        engine_->metrics_.read_stall_seconds->Observe(
            static_cast<uint64_t>(stalled_for.count()));
      }
    }
    if (close_after_flush_) {
      engine_->CloseConnection(id_, /*idle_close=*/false);
      return;
    }
  } else if (output_offset_ > 65536) {
    output_.erase(0, output_offset_);
    output_offset_ = 0;
  }
  if (!request_in_flight_) {
    // Draining output is what releases backpressure (and what lets a
    // half-closed connection finish): re-drive the pipeline.
    MaybeDispatch();
  } else {
    UpdateInterest();
  }
}

void Connection::UpdateInterest() {
  if (closing_) return;
  const bool want_write = output_bytes() > 0;
  const bool want_read =
      !peer_half_closed_ && !machine_.poisoned() && !close_after_flush_ &&
      output_bytes() <= engine_->options_.max_output_buffer;
  if (want_write == want_write_ && want_read == want_read_) return;
  want_write_ = want_write;
  want_read_ = want_read;
  Status updated = engine_->loop_.UpdateFd(fd_, want_read, want_write);
  // A failed interest update means the fd is gone from the poller — the
  // next event (or idle timer) tears the connection down.
  (void)updated;
}

// ---- EventEngine -----------------------------------------------------------

EventEngine::EventEngine(const EventEngineOptions& options, Handler handler,
                         ResponseObserver count_response,
                         ConnectionMetrics metrics)
    : options_(options),
      handler_(std::move(handler)),
      count_response_(std::move(count_response)),
      metrics_(metrics),
      loop_(EventLoop::Options{options.use_epoll, options.timer_tick, 512}),
      workers_(options.workers),
      acceptor_(this) {}

EventEngine::~EventEngine() { Stop(); }

Status EventEngine::Start(int listen_fd) {
  if (started_) return Status::InvalidArgument("engine already started");
  listen_fd_ = listen_fd;
  GALAXY_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  GALAXY_RETURN_IF_ERROR(loop_.Init());
  // The loop thread does not exist yet, so this thread is (vacuously) the
  // reactor: the pre-start registrations below are race-free.
  ClaimLoopThreadRole();
  loop_.SetTimerCallback([this](uint64_t id) {
    ClaimLoopThreadRole();  // Timer callbacks run on the loop thread.
    OnTimer(id);
  });
  GALAXY_RETURN_IF_ERROR(loop_.AddFd(listen_fd_, &acceptor_,
                                     /*want_read=*/true,
                                     /*want_write=*/false));
  // WorkerPool::Start returns void (same name as the Status-returning
  // EventEngine::Start). galaxy-lint: allow(status-consumed)
  workers_.Start();
  loop_thread_ = std::thread([this] { loop_.Run(); });
  started_ = true;
  return Status::OK();
}

void EventEngine::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // In-flight handler calls finish here; their completions Post into the
  // stopped loop and are dropped, which is fine — every connection below
  // is about to be closed anyway.
  workers_.Stop();
  // The loop thread is joined and the workers are gone: this thread is the
  // sole owner of the connection registry for the teardown below.
  ClaimLoopThreadRole();
  for (auto& [id, conn] : connections_) {
    (void)id;
    conn->closing_ = true;
    ::close(conn->fd());
    if (metrics_.connections_open != nullptr) {
      metrics_.connections_open->Add(-1);
    }
  }
  connections_.clear();
  listen_fd_ = -1;  // Owned (and closed) by the caller.
}

void EventEngine::Acceptor::OnReadable() {
  ClaimLoopThreadRole();  // FdHandler callbacks run on the loop thread.
  engine_->AcceptReady();
}

void EventEngine::AcceptReady() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN (drained) or fatal (e.g. EMFILE: retry next wakeup).
    }
    Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(this, id, fd,
                                             options_.max_input_buffer);
    Status added = loop_.AddFd(fd, conn.get(), /*want_read=*/true,
                               /*want_write=*/false);
    if (!added.ok()) {
      ::close(fd);
      continue;
    }
    connections_.emplace(id, std::move(conn));
    if (metrics_.connections_total != nullptr) metrics_.connections_total->Inc();
    if (metrics_.connections_open != nullptr) metrics_.connections_open->Add(1);
    TouchIdleDeadline(id);
  }
}

void EventEngine::Dispatch(uint64_t conn_id, HttpRequest request) {
  workers_.Submit([this, conn_id, request = std::move(request)]() mutable {
    HttpResponse response = handler_(request);
    response.close = response.close || request.WantsClose();
    const bool close_after = response.close;
    std::string bytes = SerializeResponse(response);
    loop_.Post([this, conn_id, bytes = std::move(bytes), close_after]() mutable {
      ClaimLoopThreadRole();  // Posted closures run on the loop thread.
      CompleteRequest(conn_id, std::move(bytes), close_after);
    });
  });
}

void EventEngine::CompleteRequest(uint64_t conn_id, std::string response_bytes,
                                  bool close_after) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // Closed while the query ran.
  Connection* conn = it->second.get();
  conn->request_in_flight_ = false;
  conn->EnqueueResponse(std::move(response_bytes), close_after);
  // EnqueueResponse may have torn the connection down (write error, or
  // close-after-flush with an empty buffer); only then is `conn` gone.
  auto again = connections_.find(conn_id);
  if (again != connections_.end()) again->second->MaybeDispatch();
}

void EventEngine::CloseConnection(uint64_t conn_id, bool idle_close) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  conn->closing_ = true;
  loop_.CancelTimer(conn_id);
  loop_.RemoveFd(conn->fd());
  ::close(conn->fd());
  connections_.erase(it);
  if (metrics_.connections_open != nullptr) metrics_.connections_open->Add(-1);
  if (idle_close && metrics_.idle_closed != nullptr) {
    metrics_.idle_closed->Inc();
  }
}

void EventEngine::TouchIdleDeadline(uint64_t conn_id) {
  loop_.ScheduleTimer(conn_id, TimerWheel::Clock::now() +
                                   options_.idle_timeout);
}

void EventEngine::OnTimer(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  if (it->second->request_in_flight()) {
    // A query is executing; its own ExecutionContext deadline governs it.
    TouchIdleDeadline(conn_id);
    return;
  }
  // No complete request within the window — idle keep-alive, a slowloris
  // trickle, or a peer that stopped draining responses. All are closed and
  // counted the same way.
  CloseConnection(conn_id, /*idle_close=*/true);
}

}  // namespace galaxy::server
