#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/incremental.h"
#include "server/admission.h"
#include "server/connection.h"
#include "server/http.h"
#include "server/metrics.h"
#include "server/result_cache.h"
#include "sql/catalog.h"
#include "storage/durability.h"

namespace galaxy::server {

/// Configuration of the incrementally maintained aggregate-skyline view
/// (core/incremental.h): /update routes record changes through it so the
/// exact |S ≻ R| domination counts — and with them GET /skyline — stay
/// current in O(records · d) per update instead of a full recomputation
/// (the operational face of the paper's Property 2).
struct SkylineViewConfig {
  std::string table;
  std::string group_column;
  /// Numeric attribute columns; a leading '-' minimizes that attribute
  /// (records are negated before entering the MAX-oriented core).
  std::vector<std::string> attrs;
  double gamma = 0.5;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  AdmissionOptions admission;
  size_t cache_entries = 256;
  size_t cache_bytes = 64 * 1024 * 1024;
  /// Deadline applied to queries that do not send X-Galaxy-Timeout-Ms;
  /// zero = unbounded.
  std::chrono::milliseconds default_timeout{0};
  /// A connection is closed (and counted in
  /// galaxy_connections_idle_closed) when no *complete* request arrives
  /// within this window. Trickling partial bytes does not reset it, so a
  /// slowloris client cannot pin a connection past one window.
  std::chrono::milliseconds idle_timeout{10000};
  /// Query-execution worker threads (the reactor itself never executes
  /// queries).
  size_t io_workers = 4;
  /// Prefer epoll over the portable poll(2) backend.
  bool use_epoll = true;
  /// Per-connection output-buffer backpressure threshold.
  size_t max_output_buffer = 1 << 20;
  /// With durability attached: rotate to a fresh snapshot + WAL after this
  /// many logged updates (inline, on the update that crosses the
  /// threshold). 0 = never snapshot automatically.
  uint64_t snapshot_every = 0;
};

/// The serving layer: a minimal dependency-free HTTP/1.1 front end over a
/// sql::Database, with admission control, a version-validated result
/// cache, and a Prometheus metrics endpoint.
///
/// Endpoints (see README "Serving" for the full contract):
///   POST /query    SQL body -> JSON (default) or CSV (Accept: text/csv).
///                  Headers X-Galaxy-Timeout-Ms / X-Galaxy-Max-Comparisons
///                  arm the execution control plane; X-Galaxy-Strict: 1
///                  disables graceful degradation. 200 exact, 206 sound
///                  approximate superset (body carries "degraded": true),
///                  400 bad SQL, 404 unknown table, 408 strict-mode trip,
///                  429 overload.
///   POST /update   ?table=T&op=insert|remove, body = one CSV row typed by
///                  the table schema. Installs a new table snapshot (new
///                  catalog version -> precise cache invalidation) and
///                  feeds the configured incremental skyline view.
///   GET  /skyline  The incrementally maintained aggregate skyline.
///   GET  /metrics  Prometheus text format.
///   GET  /healthz  Liveness probe.
///
/// Threading model: a single reactor
/// thread (server/event_loop.h) owns the listen socket and every
/// connection — non-blocking reads feed per-connection incremental-parse
/// state machines (server/connection.h), complete requests are handed to a
/// small WorkerPool, and responses come back to the loop through a wakeup
/// pipe to be written with EPOLLOUT-driven buffering and per-connection
/// backpressure. Open connections therefore cost a few KB, not a thread.
/// The worker pool is deliberately separate from core::ThreadPool: that
/// pool's Run is not reentrant and the parallel skyline operator already
/// executes on it, so queries must not originate there. Admission control
/// (server/admission.h) still bounds concurrent query execution.
///
/// The Database outlives the server and may also be read/updated directly
/// by the embedding process (it is internally synchronized).
class Server {
 public:
  Server(sql::Database* db, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event engine (reactor + worker pool).
  /// Fails with InvalidArgument/Internal on bad host or occupied port.
  Status Start();

  /// Stops the event engine and closes the listener. Safe to call twice;
  /// called by the destructor.
  void Stop();

  /// The bound TCP port (after Start()).
  uint16_t port() const { return port_; }

  /// Builds the incremental aggregate-skyline view from the table's
  /// current contents; subsequent /update calls maintain it.
  Status EnableSkylineView(const SkylineViewConfig& config)
      EXCLUDES(view_mutex_);

  /// Attaches the write-ahead durability layer (storage/durability.h):
  /// from here on POST /update acks only after the mutation is logged
  /// (503 on any durability failure), and every
  /// ServerOptions::snapshot_every updates the server rotates the data
  /// directory inline. Call after DurabilityManager::Open recovered into
  /// the database and before Start(); the manager must outlive the server.
  /// Also publishes the recovery gauges.
  void AttachDurability(storage::DurabilityManager* durability);

  /// Metrics hooks to pass to DurabilityManager::Open so WAL appends,
  /// fsyncs and snapshots land in this server's registry. Valid for the
  /// server's lifetime.
  storage::DurabilityMetricsHooks DurabilityHooks();

  /// Routes one parsed request exactly as a connection would — the
  /// in-process testing seam (no sockets involved).
  HttpResponse Handle(const HttpRequest& request);

  MetricsRegistry& metrics() { return metrics_; }
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  /// One /update's effect on the view, validated eagerly (O(d): label and
  /// point extracted, non-numeric attributes already rejected) but applied
  /// lazily: the O(records · d) incremental-maintenance work runs when a
  /// reader next asks for the skyline, so an update burst between reads
  /// costs one refresh, not one per update.
  struct PendingDelta {
    std::string label;
    std::vector<double> point;  // signs already applied
    bool insert = true;
  };

  struct ViewState {
    SkylineViewConfig config;
    core::IncrementalAggregateSkyline inc;
    std::map<std::string, uint32_t> group_ids;
    size_t group_col = 0;
    std::vector<size_t> attr_cols;
    std::vector<double> signs;  // +1 max, -1 min per attr
    std::vector<PendingDelta> pending;
  };

  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleUpdate(const HttpRequest& request)
      EXCLUDES(update_mutex_, view_mutex_);
  HttpResponse HandleSkyline() EXCLUDES(view_mutex_);
  HttpResponse HandleMetrics();
  void CountResponse(const HttpResponse& response);
  /// Applies one parsed update row to the incremental view.
  Status ApplyToView(ViewState* view, const Table& table, const Row& row,
                     bool insert);
  /// Validates the row against the view (label extracted, attributes
  /// numeric) and builds the PendingDelta — without queueing it, so the
  /// caller can reject the update before anything durable happens.
  Result<PendingDelta> ValidateViewDelta(const ViewState& view,
                                         const Row& row, bool insert);
  /// Replays queued deltas into the incremental maintainer; one call is
  /// one "view refresh" no matter how many deltas it drains.
  Status DrainViewDeltas(ViewState* view);

  sql::Database* const db_;
  const ServerOptions options_;

  MetricsRegistry metrics_;
  AdmissionController admission_;
  ResultCache cache_;
  const std::chrono::steady_clock::time_point start_time_;

  // Metric handles (owned by metrics_).
  Counter* requests_total_;
  Counter* connections_total_;
  Counter* queries_total_;
  Counter* updates_total_;
  Counter* rejected_total_;
  Counter* degraded_total_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* parse_errors_total_;
  Counter* sky_record_comparisons_;
  Counter* sky_group_pairs_;
  Counter* sky_mbb_shortcuts_;
  Counter* sky_stopped_early_;
  Counter* sky_chunks_stolen_;
  Histogram* query_latency_;
  Gauge* active_queries_;
  Gauge* queue_depth_;
  Gauge* cache_entries_gauge_;
  Gauge* cache_hit_ratio_;
  Gauge* cache_evictions_;
  Gauge* cache_invalidations_;
  Gauge* uptime_seconds_;
  Gauge* qps_;
  Counter* wal_appends_total_;
  Counter* wal_bytes_total_;
  Counter* durability_errors_total_;
  Counter* view_refreshes_total_;
  Counter* view_deltas_total_;
  Histogram* wal_fsync_seconds_;
  Histogram* snapshot_duration_seconds_;
  Gauge* recovery_replayed_records_;
  Gauge* view_pending_deltas_;
  Gauge* connections_open_;
  Counter* connections_idle_closed_;
  Histogram* read_stall_seconds_;
  std::map<int, Counter*> responses_by_code_;
  Counter* responses_other_;

  /// Non-owning; null until AttachDurability. Written before Start, read
  /// by connection threads afterwards.
  storage::DurabilityManager* durability_ = nullptr;

  // Serializes read-modify-write /update cycles (the catalog itself only
  // guards single operations) — and with them WAL appends vs. snapshot
  // rotation, which DurabilityManager requires. Always taken before
  // view_mutex_ in HandleUpdate.
  common::Mutex update_mutex_ ACQUIRED_BEFORE(view_mutex_);
  uint64_t updates_since_snapshot_ GUARDED_BY(update_mutex_) = 0;

  common::Mutex view_mutex_;
  std::unique_ptr<ViewState> view_ GUARDED_BY(view_mutex_);

  // ---- Connection plumbing. ----------------------------------------------
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::unique_ptr<EventEngine> engine_;
};

}  // namespace galaxy::server
