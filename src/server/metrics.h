#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace galaxy::server {

/// A monotonically increasing counter. Incrementing is a single relaxed
/// atomic add — safe and cheap from any number of threads (the serving
/// hot path).
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A gauge holding an instantaneous signed value (queue depth, active
/// queries). Set/Add are relaxed atomics.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over microseconds. Buckets are
/// power-of-two upper bounds: le 1us, 2us, 4us, ..., 2^(kNumBuckets-1) us
/// (~67s), plus +Inf. Observe is lock-free: one relaxed add into the
/// bucket plus count/sum updates. Quantiles are estimated by linear
/// interpolation inside the selected bucket — exact enough for p50/p99
/// serving dashboards, and monotone in the data.
class Histogram {
 public:
  static constexpr int kNumBuckets = 27;  ///< finite buckets before +Inf

  void Observe(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  /// Estimated q-quantile (q in [0,1]) in microseconds; 0 when empty.
  double QuantileMicros(double q) const;
  /// Upper bound of bucket `i` in microseconds (1 << i).
  static uint64_t BucketUpperMicros(int i) { return uint64_t{1} << i; }
  uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Observations above the last finite bucket.
  uint64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

/// A named collection of counters, gauges and histograms with a Prometheus
/// text-format renderer (exposition format 0.0.4).
///
/// Thread safety: Add* registration takes a mutex and is intended for
/// startup; the returned pointers are stable for the registry's lifetime
/// and their mutation methods are lock-free. Render takes the mutex (it
/// only contends with registration, not with the hot path).
class MetricsRegistry {
 public:
  /// Name must be a valid Prometheus metric name; `labels` (optional) is a
  /// pre-rendered label set like `{code="200"}` appended to the sample
  /// line, so one logical metric can be registered per label value.
  Counter* AddCounter(std::string name, std::string help,
                      std::string labels = "") EXCLUDES(mutex_);
  Gauge* AddGauge(std::string name, std::string help,
                  std::string labels = "") EXCLUDES(mutex_);
  Histogram* AddHistogram(std::string name, std::string help)
      EXCLUDES(mutex_);

  /// Renders every metric in Prometheus text format. Histograms emit
  /// cumulative `_bucket{le=...}` series in seconds plus `_sum`/`_count`
  /// and companion `<name>_p50` / `<name>_p99` gauges.
  std::string Render() const EXCLUDES(mutex_);

 private:
  struct NamedCounter {
    std::string name, help, labels;
    std::unique_ptr<Counter> counter;
  };
  struct NamedGauge {
    std::string name, help, labels;
    std::unique_ptr<Gauge> gauge;
  };
  struct NamedHistogram {
    std::string name, help;
    std::unique_ptr<Histogram> histogram;
  };

  mutable common::Mutex mutex_;
  std::vector<NamedCounter> counters_ GUARDED_BY(mutex_);
  std::vector<NamedGauge> gauges_ GUARDED_BY(mutex_);
  std::vector<NamedHistogram> histograms_ GUARDED_BY(mutex_);
};

}  // namespace galaxy::server
