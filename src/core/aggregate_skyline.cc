#include "core/aggregate_skyline.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "core/adaptive.h"
#include "core/algo_context.h"
#include "core/anytime.h"
#include "core/gamma.h"
#include "core/parallel.h"

namespace galaxy::core {

const char* AlgorithmToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBruteForce:
      return "BF";
    case Algorithm::kNestedLoop:
      return "NL";
    case Algorithm::kTransitive:
      return "TR";
    case Algorithm::kSorted:
      return "SI";
    case Algorithm::kIndexed:
      return "IN";
    case Algorithm::kIndexedBbox:
      return "LO";
    case Algorithm::kParallel:
      return "PAR";
    case Algorithm::kAuto:
      return "AUTO";
  }
  return "?";
}

const char* GroupOrderingToString(GroupOrdering ordering) {
  switch (ordering) {
    case GroupOrdering::kCornerDistance:
      return "corner-distance";
    case GroupOrdering::kSmallestFirst:
      return "smallest-first";
    case GroupOrdering::kSmallestFirstThenCorner:
      return "smallest-first-then-corner";
  }
  return "?";
}

std::string AggregateSkylineStats::ToString() const {
  std::string out;
  out += "group_pairs=" + std::to_string(group_pairs_classified);
  out += " record_cmps=" + std::to_string(record_comparisons);
  out += " skipped_strong=" + std::to_string(pairs_skipped_strong);
  out += " skipped_dedup=" + std::to_string(pairs_skipped_dedup);
  out += " window_candidates=" + std::to_string(window_candidates);
  out += " mbb_shortcuts=" + std::to_string(mbb_shortcuts);
  out += " stopped_early=" + std::to_string(stopped_early);
  out += " records_preclassified=" + std::to_string(records_preclassified);
  out += " chunks_stolen=" + std::to_string(chunks_stolen);
  out += " pairs_split=" + std::to_string(pairs_split);
  out += " wall_s=" + std::to_string(wall_seconds);
  return out;
}

bool AggregateSkylineResult::Contains(uint32_t id) const {
  return std::binary_search(skyline.begin(), skyline.end(), id);
}

std::vector<std::string> AggregateSkylineResult::Labels(
    const GroupedDataset& dataset) const {
  std::vector<std::string> out;
  out.reserve(skyline.size());
  for (uint32_t id : skyline) {
    out.push_back(dataset.group(id).label());
  }
  return out;
}

namespace {

// Resolves kAuto to a concrete algorithm (and its preferred ordering).
AggregateSkylineOptions ResolveAlgorithm(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options) {
  AggregateSkylineOptions effective = options;
  if (options.algorithm == Algorithm::kAuto) {
    AdaptiveChoice choice = ChooseAlgorithm(
        ProfileWorkload(dataset, /*sample_size=*/64, options.exec));
    effective.algorithm = choice.algorithm;
    effective.ordering = choice.ordering;
  }
  return effective;
}

// One dispatch of an already-resolved algorithm; honors effective.exec if
// set (workers unwind once it stops, leaving sound partial marks).
AggregateSkylineResult RunResolved(const GroupedDataset& dataset,
                                   const AggregateSkylineOptions& effective) {
  WallTimer timer;

  if (effective.algorithm == Algorithm::kParallel) {
    ParallelOptions parallel_options;
    parallel_options.gamma = effective.gamma;
    parallel_options.use_stop_rule = effective.use_stop_rule;
    parallel_options.use_mbb = effective.use_mbb;
    parallel_options.exec = effective.exec;
    parallel_options.kernel = effective.kernel;
    return ComputeAggregateSkylineParallel(dataset, parallel_options);
  }

  AggregateSkylineResult result;
  result.algorithm_used = effective.algorithm;
  internal::AlgoContext ctx(dataset, effective, &result.stats);

  switch (effective.algorithm) {
    case Algorithm::kBruteForce:
      internal::RunBruteForce(ctx);
      break;
    case Algorithm::kNestedLoop:
      internal::RunNestedLoop(ctx);
      break;
    case Algorithm::kTransitive:
      internal::RunTransitive(ctx);
      break;
    case Algorithm::kSorted:
      internal::RunSorted(ctx);
      break;
    case Algorithm::kIndexed:
    case Algorithm::kIndexedBbox:
      internal::RunIndexed(ctx);
      break;
    case Algorithm::kParallel:
    case Algorithm::kAuto:
      GALAXY_CHECK(false) << "resolved before dispatch";
      break;
  }

  result.skyline = ctx.Skyline();
  result.dominated = ctx.dominated_flags();
  result.strongly_dominated = ctx.strong_flags();
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

// Salvages an interrupted run: merges its partial dominance marks (every
// one of which is a true γ-domination) with a bounded anytime pass over
// the same dataset. Both mark sets only exclude genuinely dominated
// groups, so their union excludes only dominated groups too — the merged
// skyline is a sound superset of the exact answer, and equals it when the
// salvage pass manages to decide every pair.
AggregateSkylineResult DegradeToAnytime(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options,
    AggregateSkylineResult partial) {
  AnytimeAggregateSkyline::Options anytime_options;
  anytime_options.gamma = options.gamma;
  anytime_options.use_mbb = true;
  // Deliberately no exec: the salvage budget is deterministic and
  // independent of the tripped context, so a degraded answer returns
  // promptly even when the deadline already expired.
  AnytimeAggregateSkyline engine(dataset, anytime_options);
  AnytimeAggregateSkyline::Snapshot snapshot =
      engine.Advance(options.degrade_comparison_budget);

  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  std::vector<uint8_t> anytime_dominated(n, 1);
  for (uint32_t g : snapshot.possible) anytime_dominated[g] = 0;

  partial.skyline.clear();
  for (uint32_t g = 0; g < n; ++g) {
    if (anytime_dominated[g] != 0) partial.dominated[g] = 1;
    if (partial.dominated[g] == 0) partial.skyline.push_back(g);
  }
  partial.stats.record_comparisons += snapshot.comparisons_used;
  partial.quality = snapshot.complete ? ResultQuality::kExact
                                      : ResultQuality::kApproximateSuperset;
  return partial;
}

}  // namespace

AggregateSkylineResult ComputeAggregateSkyline(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options) {
  GALAXY_CHECK(options.exec == nullptr)
      << "ComputeAggregateSkyline cannot report interruptions; use "
         "ComputeAggregateSkylineBounded with an ExecutionContext";
  return RunResolved(dataset, ResolveAlgorithm(dataset, options));
}

Result<AggregateSkylineResult> ComputeAggregateSkylineBounded(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options) {
  WallTimer timer;
  AggregateSkylineResult result =
      RunResolved(dataset, ResolveAlgorithm(dataset, options));
  if (options.exec == nullptr || !options.exec->stopped()) {
    return result;
  }
  if (!options.allow_approximate || !options.exec->degradable_trip()) {
    return options.exec->status();
  }
  result = DegradeToAnytime(dataset, options, std::move(result));
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<RankedGroup> RankByGamma(const GroupedDataset& dataset) {
  return std::move(RankByGammaBounded(dataset, nullptr)).value();
}

Result<std::vector<RankedGroup>> RankByGammaBounded(
    const GroupedDataset& dataset, ExecutionContext* exec) {
  const size_t n = dataset.num_groups();
  std::vector<RankedGroup> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RankedGroup rg;
    rg.id = i;
    rg.label = dataset.group(i).label();
    rg.min_gamma = 0.5;
    rg.always_dominated = false;
    rg.strongest_dominator = i;
    rg.strongest_probability = 0.0;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const uint64_t pair_cost = std::max<uint64_t>(
          1, static_cast<uint64_t>(dataset.group(j).size()) *
                 dataset.group(i).size());
      if (exec != nullptr && !exec->Charge(pair_cost)) {
        return exec->status();
      }
      double p = DominationProbability(dataset.group(j), dataset.group(i));
      if (p > rg.strongest_probability) {
        rg.strongest_probability = p;
        rg.strongest_dominator = j;
      }
      if (p == 1.0) {
        rg.always_dominated = true;
        break;
      }
      rg.min_gamma = std::max(rg.min_gamma, p);
    }
    out.push_back(std::move(rg));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RankedGroup& a, const RankedGroup& b) {
                     if (a.always_dominated != b.always_dominated) {
                       return !a.always_dominated;
                     }
                     return a.min_gamma < b.min_gamma;
                   });
  return out;
}

}  // namespace galaxy::core
