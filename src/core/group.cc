#include "core/group.h"

#include <unordered_map>

#include "common/logging.h"
#include "core/count_kernel.h"

namespace galaxy::core {

Group::Group(uint32_t id, std::string label, std::vector<double> data,
             size_t dims)
    : id_(id),
      label_(std::move(label)),
      data_(std::move(data)),
      dims_(dims),
      size_(dims == 0 ? 0 : data_.size() / dims),
      mbb_(Box::Empty(dims)) {
  GALAXY_CHECK_GT(dims, 0u);
  GALAXY_CHECK_EQ(data_.size() % dims, 0u);
  for (size_t i = 0; i < size_; ++i) {
    mbb_.Expand(point(i));
  }
}

Group::~Group() { delete score_order_.load(std::memory_order_acquire); }

Group::Group(const Group& other)
    : id_(other.id_),
      label_(other.label_),
      data_(other.data_),
      dims_(other.dims_),
      size_(other.size_),
      mbb_(other.mbb_) {}

Group& Group::operator=(const Group& other) {
  if (this == &other) return *this;
  id_ = other.id_;
  label_ = other.label_;
  data_ = other.data_;
  dims_ = other.dims_;
  size_ = other.size_;
  mbb_ = other.mbb_;
  delete score_order_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

Group::Group(Group&& other) noexcept
    : id_(other.id_),
      label_(std::move(other.label_)),
      data_(std::move(other.data_)),
      dims_(other.dims_),
      size_(other.size_),
      mbb_(std::move(other.mbb_)),
      score_order_(
          other.score_order_.exchange(nullptr, std::memory_order_acq_rel)) {}

Group& Group::operator=(Group&& other) noexcept {
  if (this == &other) return *this;
  id_ = other.id_;
  label_ = std::move(other.label_);
  data_ = std::move(other.data_);
  dims_ = other.dims_;
  size_ = other.size_;
  mbb_ = std::move(other.mbb_);
  delete score_order_.exchange(
      other.score_order_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  return *this;
}

const std::vector<uint32_t>& Group::score_order_desc() const {
  const std::vector<uint32_t>* cached =
      score_order_.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  // galaxy-lint: allow(naked-new) — lock-free once-publication: ownership
  // transfers to score_order_ via CAS; the loser deletes its copy below.
  auto* order = new std::vector<uint32_t>();
  std::vector<double> scores;
  kernel::SortByScoreDesc(data_.data(), size_, dims_, order, &scores);
  const std::vector<uint32_t>* expected = nullptr;
  if (!score_order_.compare_exchange_strong(expected, order,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    delete order;  // another thread published first; use its copy
    return *expected;
  }
  return *order;
}

Result<GroupedDataset> GroupedDataset::FromTable(
    const Table& table, const std::vector<std::string>& group_columns,
    const std::vector<std::string>& value_columns,
    const skyline::PreferenceList& prefs) {
  if (group_columns.empty()) {
    return Status::InvalidArgument("at least one grouping column is required");
  }
  if (value_columns.empty()) {
    return Status::InvalidArgument("at least one value column is required");
  }
  skyline::PreferenceList effective_prefs =
      prefs.empty() ? skyline::AllMax(value_columns.size()) : prefs;
  if (effective_prefs.size() != value_columns.size()) {
    return Status::InvalidArgument(
        "preference list size does not match value column count");
  }

  std::vector<size_t> group_idx;
  for (const std::string& name : group_columns) {
    GALAXY_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    group_idx.push_back(idx);
  }
  std::vector<size_t> value_idx;
  for (const std::string& name : value_columns) {
    GALAXY_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    value_idx.push_back(idx);
  }

  // The value columns come out as contiguous double slices (zero-copy for
  // kDouble storage), checked for NULLs and non-numeric types up front.
  std::vector<std::string> value_names;
  value_names.reserve(value_idx.size());
  for (size_t idx : value_idx) {
    value_names.push_back(table.schema().column(idx).name);
  }
  GALAXY_ASSIGN_OR_RETURN(Table::NumericColumns values,
                          table.ExtractNumericColumns(value_names));

  // First pass: assign rows to groups by composite key, in order of first
  // occurrence.
  std::unordered_map<std::string, size_t> key_to_group;
  std::vector<std::string> labels;
  std::vector<std::vector<double>> buffers;
  const size_t d = value_columns.size();

  std::string key;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    // Map key: length-prefixed parts, so composite keys cannot collide
    // (("a|b", "c") vs ("a", "b|c")). The human-readable label joins the
    // parts with '|'.
    key.clear();
    std::string label;
    for (size_t k = 0; k < group_idx.size(); ++k) {
      std::string part = table.column(group_idx[k]).GetValue(r).ToString();
      key += std::to_string(part.size());
      key += ':';
      key += part;
      if (k > 0) label += "|";
      label += part;
    }
    auto [it, inserted] = key_to_group.try_emplace(key, labels.size());
    if (inserted) {
      labels.push_back(label);
      buffers.emplace_back();
    }
    std::vector<double>& buf = buffers[it->second];
    for (size_t k = 0; k < d; ++k) {
      double v = values.slices[k][r];
      if (effective_prefs[k] == skyline::Preference::kMin) v = -v;
      buf.push_back(v);
    }
  }

  std::vector<Group> groups;
  groups.reserve(labels.size());
  for (size_t g = 0; g < labels.size(); ++g) {
    groups.emplace_back(static_cast<uint32_t>(g), labels[g],
                        std::move(buffers[g]), d);
  }
  return GroupedDataset(d, std::move(groups));
}

GroupedDataset GroupedDataset::FromDenseBuffers(
    size_t dims, std::vector<std::vector<double>> buffers,
    std::vector<std::string> labels) {
  GALAXY_CHECK_GT(dims, 0u);
  GALAXY_CHECK(labels.empty() || labels.size() == buffers.size());
  std::vector<Group> out;
  out.reserve(buffers.size());
  for (size_t g = 0; g < buffers.size(); ++g) {
    std::string label =
        labels.empty() ? "g" + std::to_string(g) : std::move(labels[g]);
    out.emplace_back(static_cast<uint32_t>(g), std::move(label),
                     std::move(buffers[g]), dims);
  }
  return GroupedDataset(dims, std::move(out));
}

GroupedDataset GroupedDataset::FromPoints(
    const std::vector<std::vector<Point>>& groups,
    const std::vector<std::string>& labels) {
  GALAXY_CHECK(!groups.empty());
  GALAXY_CHECK(labels.empty() || labels.size() == groups.size());
  size_t dims = 0;
  for (const auto& g : groups) {
    if (!g.empty()) {
      dims = g.front().size();
      break;
    }
  }
  GALAXY_CHECK_GT(dims, 0u);
  std::vector<Group> out;
  out.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<double> buf;
    buf.reserve(groups[g].size() * dims);
    for (const Point& p : groups[g]) {
      GALAXY_CHECK_EQ(p.size(), dims);
      buf.insert(buf.end(), p.begin(), p.end());
    }
    std::string label = labels.empty() ? std::string("g") : labels[g];
    if (labels.empty()) label += std::to_string(g);
    out.emplace_back(static_cast<uint32_t>(g), std::move(label),
                     std::move(buf), dims);
  }
  return GroupedDataset(dims, std::move(out));
}

size_t GroupedDataset::total_records() const {
  size_t n = 0;
  for (const Group& g : groups_) n += g.size();
  return n;
}

Result<size_t> GroupedDataset::FindByLabel(const std::string& label) const {
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].label() == label) return i;
  }
  return Status::NotFound("no group labeled: " + label);
}

}  // namespace galaxy::core
