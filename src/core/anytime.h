#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/exec_context.h"
#include "core/gamma.h"
#include "core/group.h"

namespace galaxy::core {

/// Anytime aggregate-skyline processing, in the spirit of the authors'
/// companion work on anytime skylines for interactive systems (Magnani,
/// Assent, Mortensen, 2012 — reference [15] of the paper): the operator
/// can be interrupted at any record-comparison budget and returns a sound
/// over-approximation of the skyline that only shrinks as the budget
/// grows, plus the subset already *confirmed* to be in the exact answer.
///
/// Implementation: all group pairs are compared concurrently in slices,
/// each through a resumable incremental comparator maintaining exact
/// lower/upper bounds on the pair's domination counts (the stopping rule
/// of Section 3.3 generalized to suspensions). A group leaves `possible`
/// the moment some pair proves it γ-dominated; it enters `confirmed` when
/// every pair involving it is decided and none dominates it.
class AnytimeAggregateSkyline {
 public:
  struct Options {
    double gamma = 0.5;
    /// Pre-classify records against opposing MBB corners (Figure 9).
    bool use_mbb = true;
    /// Record comparisons per pair and round (smaller = smoother
    /// progress curve, slightly more scheduling overhead).
    uint64_t slice = 256;
    /// Optional control plane: Advance() stops within one slice of the
    /// context stopping (deadline, cancel, budget) and returns the current
    /// — always sound — snapshot; construction skips the MBB
    /// pre-classification once the context is stopped. Null = unbounded.
    ExecutionContext* exec = nullptr;
  };

  /// Snapshot of the current state of knowledge.
  struct Snapshot {
    /// Groups not yet proven dominated (superset of the exact skyline).
    std::vector<uint32_t> possible;
    /// Groups proven to be in the exact skyline.
    std::vector<uint32_t> confirmed;
    uint64_t comparisons_used = 0;
    uint64_t pairs_total = 0;
    uint64_t pairs_decided = 0;
    /// True when possible == confirmed == the exact aggregate skyline.
    bool complete = false;
  };

  AnytimeAggregateSkyline(const GroupedDataset& dataset,
                          const Options& options);
  ~AnytimeAggregateSkyline();

  AnytimeAggregateSkyline(const AnytimeAggregateSkyline&) = delete;
  AnytimeAggregateSkyline& operator=(const AnytimeAggregateSkyline&) = delete;

  /// Spends up to `comparison_budget` more record comparisons; returns the
  /// state afterwards. Call repeatedly to refine; once complete() is true
  /// further calls are no-ops.
  Snapshot Advance(uint64_t comparison_budget);

  /// Current state without doing any work.
  Snapshot Current() const;

  bool complete() const { return complete_; }

 private:
  struct PairState;

  void RebuildSnapshot(Snapshot* snapshot) const;

  const GroupedDataset* dataset_;
  Options options_;
  GammaThresholds thresholds_;
  std::vector<PairState> pairs_;
  std::vector<uint32_t> active_;  // indexes into pairs_, still undecided
  std::vector<uint8_t> dominated_;
  std::vector<uint32_t> undecided_per_group_;
  uint64_t comparisons_used_ = 0;
  bool complete_ = false;
};

/// One-shot convenience: run the anytime operator to the given budget.
AnytimeAggregateSkyline::Snapshot ComputeAnytime(
    const GroupedDataset& dataset, double gamma, uint64_t comparison_budget);

}  // namespace galaxy::core

