#pragma once

#include <cstdint>
#include <vector>

#include "core/group.h"

namespace galaxy::core {

/// The "k most representative" selection, lifted from records (Lin et
/// al., reference [14] of the paper) to groups: among the aggregate
/// skyline groups, pick k whose combined γ-dominance covers as many
/// non-skyline groups as possible (greedy max-coverage, the standard
/// (1 - 1/e)-approximation of the NP-hard objective).
struct RepresentativeGroup {
  uint32_t id = 0;
  /// Non-skyline groups newly covered when this group was picked.
  size_t marginal_coverage = 0;
};

struct RepresentativeResult {
  /// The chosen skyline groups, in greedy pick order.
  std::vector<RepresentativeGroup> representatives;
  /// Total distinct non-skyline groups dominated by the chosen set.
  size_t covered = 0;
  /// Number of dominated (non-skyline) groups in the dataset.
  size_t dominated_total = 0;
};

/// Selects up to k representative skyline groups at the given γ. Runs the
/// exact (brute-force) skyline plus one exact domination probability per
/// (skyline, non-skyline) pair: O(Σ|g_i||g_j|·d) worst case. If the
/// skyline has at most k groups, all of them are returned.
RepresentativeResult SelectRepresentatives(const GroupedDataset& dataset,
                                           size_t k, double gamma = 0.5);

}  // namespace galaxy::core

