#pragma once

#include <cstdint>
#include <string>

#include "core/count_kernel.h"
#include "core/exec_context.h"

namespace galaxy::core {

/// The aggregate-skyline algorithms of Section 3, plus an exhaustive
/// ground-truth mode.
enum class Algorithm {
  /// All-pairs exact computation with no pruning at all (not in the paper;
  /// the reference result used by the test suite).
  kBruteForce,
  /// Algorithm 2 — nested loop with the internal stopping rule ("NL").
  kNestedLoop,
  /// Algorithm 3 — nested loop exploiting weak transitivity ("TR").
  kTransitive,
  /// Algorithm 4 — sorted access to groups ("SI").
  kSorted,
  /// Algorithm 5 — R-tree window queries for candidate dominators ("IN").
  kIndexed,
  /// Algorithm 5 + bounding-box internal approximation ("LO").
  kIndexedBbox,
  /// The multi-threaded exact operator ("PAR", core/parallel.h): the
  /// group-pair space striped across worker threads. Selecting it through
  /// ComputeAggregateSkyline runs ComputeAggregateSkylineParallel with
  /// hardware-concurrency threads; results report this identifier so bench
  /// output and ablations attribute the parallel path correctly.
  kParallel,
  /// Adaptive: profiles the workload and picks kSorted or kIndexedBbox
  /// (plus an ordering) per core/adaptive.h — the "customized query
  /// optimization" direction of the paper's concluding remarks.
  kAuto,
};

const char* AlgorithmToString(Algorithm algorithm);

/// Keys available for ordering group access in the sorted/indexed
/// algorithms.
enum class GroupOrdering {
  /// Descending sum of L1 distances of the MBB corners from the origin
  /// (Algorithm 4): groups likely to dominate are probed first.
  kCornerDistance,
  /// Ascending cardinality (the global optimization of Section 3.4): cheap
  /// comparisons first, and large expensive groups are often pruned before
  /// they are reached.
  kSmallestFirst,
  /// Ascending cardinality, ties broken by descending corner distance.
  kSmallestFirstThenCorner,
};

const char* GroupOrderingToString(GroupOrdering ordering);

/// Configuration of a ComputeAggregateSkyline call. Defaults reproduce the
/// paper's experimental setup (γ = 0.5; stopping rule on everywhere; MBB
/// approximation only in LO, which sets use_mbb itself).
struct AggregateSkylineOptions {
  /// Dominance threshold γ in [0.5, 1] (Definition 3, Proposition 1).
  double gamma = 0.5;

  Algorithm algorithm = Algorithm::kIndexed;

  /// Internal stopping rule (Section 3.3). On for every paper algorithm.
  bool use_stop_rule = true;

  /// Internal MBB-region pruning (Figure 9). The paper enables this only in
  /// LO; setting it here forces it for any algorithm (ablations).
  bool use_mbb = false;

  /// Skip strongly-dominated groups entirely, as Algorithms 3-5 do
  /// (justified by weak transitivity). Setting this to false makes
  /// TR/SI/IN/LO exact at the cost of extra comparisons ("safe mode"; see
  /// DESIGN.md on the weak-transitivity gap).
  bool prune_strongly_dominated = true;

  /// Use the provably sufficient strong threshold γ̄ = (3+γ)/4 instead of
  /// the paper's (refuted) Proposition 5 formula; see DESIGN.md erratum 3.
  /// Strong domination then fires less often, trading pruning for a sound
  /// two-step chain argument.
  bool use_proven_gamma_bar = false;

  /// Counting kernel driving every pairwise residual scan
  /// (core/count_kernel.h). Any policy produces the identical result;
  /// kAuto picks per pair (tiled SIMD blocks for exhaustive or budgeted
  /// scans, the sorted-score early-exit path or the 2D sweep for large
  /// unbudgeted ones). kScalar is the pre-kernel reference loop.
  KernelPolicy kernel = KernelPolicy::kAuto;

  /// Group access ordering for kSorted / kIndexed / kIndexedBbox.
  GroupOrdering ordering = GroupOrdering::kCornerDistance;

  /// Fan-out of the R-tree used by the indexed algorithms.
  size_t rtree_fanout = 16;

  /// Optional execution control plane (deadline, cancellation token,
  /// resource budgets; core/exec_context.h). Only honored by the
  /// Status-returning entry point ComputeAggregateSkylineBounded; the
  /// legacy value-returning ComputeAggregateSkyline requires it to stay
  /// null. Null means unbounded.
  ExecutionContext* exec = nullptr;

  /// When the control plane stops the run for a deadline, a cancellation
  /// or the comparison budget, degrade gracefully instead of erroring:
  /// hand the dataset to the anytime operator and return its sound
  /// over-approximation snapshot tagged ResultQuality::kApproximateSuperset
  /// (memory-budget trips always error — degradation could not respect
  /// them either). Ignored when exec is null.
  bool allow_approximate = false;

  /// Record-comparison budget of the degradation pass (the anytime salvage
  /// run after an interruption). Deterministic and independent of the
  /// tripped context, so a degraded answer returns promptly even when the
  /// deadline has already expired.
  uint64_t degrade_comparison_budget = 1 << 20;
};

/// Work counters accumulated over one aggregate-skyline computation.
struct AggregateSkylineStats {
  uint64_t group_pairs_classified = 0;  ///< decided pair classifications
                                        ///< (aborted ones decide nothing
                                        ///< and are not counted)
  uint64_t record_comparisons = 0;      ///< record-level dominance tests
  uint64_t pairs_skipped_strong = 0;    ///< pair comparisons skipped because
                                        ///< a side was strongly dominated
  uint64_t pairs_skipped_dedup = 0;     ///< indexed: duplicate pair skips
  uint64_t window_candidates = 0;       ///< indexed: candidates returned by
                                        ///< window queries
  uint64_t mbb_shortcuts = 0;           ///< pairs decided by corner test only
  uint64_t stopped_early = 0;           ///< pairs ended by the stopping rule
  uint64_t records_preclassified = 0;   ///< records the MBB corner test kept
                                        ///< out of the pairwise scans
  uint64_t chunks_stolen = 0;           ///< parallel: work-stealing rebalances
  uint64_t pairs_split = 0;             ///< parallel: giant pairs whose tile
                                        ///< grid was split across workers
  double wall_seconds = 0.0;

  std::string ToString() const;
};

}  // namespace galaxy::core

