#include "core/incremental.h"

#include "common/logging.h"
#include "skyline/dominance.h"

namespace galaxy::core {

IncrementalAggregateSkyline::IncrementalAggregateSkyline(size_t dims,
                                                         double gamma)
    : dims_(dims), gamma_(gamma) {
  GALAXY_CHECK_GT(dims, 0u);
  GALAXY_CHECK_GE(gamma, 0.5);
  GALAXY_CHECK_LE(gamma, 1.0);
}

uint32_t IncrementalAggregateSkyline::AddGroup(std::string label) {
  size_t old_n = groups_.size();
  size_t new_n = old_n + 1;
  // Re-lay out the count matrix with the extra row/column (all zeros).
  std::vector<uint64_t> grown(new_n * new_n, 0);
  for (size_t s = 0; s < old_n; ++s) {
    // The re-layout must run to completion or the count matrix is torn;
    // it is O(groups^2) state maintenance bounded by the live group count
    // and governed by update admission control, not a query budget.
    // galaxy-analyze: allow(budget-reach)
    for (size_t r = 0; r < old_n; ++r) {
      grown[s * new_n + r] = counts_[s * old_n + r];
    }
  }
  counts_ = std::move(grown);
  groups_.push_back({std::move(label), {}});
  return static_cast<uint32_t>(old_n);
}

uint64_t& IncrementalAggregateSkyline::CountRef(uint32_t s, uint32_t r) {
  return counts_[static_cast<size_t>(s) * groups_.size() + r];
}

uint64_t IncrementalAggregateSkyline::CountAt(uint32_t s, uint32_t r) const {
  return counts_[static_cast<size_t>(s) * groups_.size() + r];
}

Status IncrementalAggregateSkyline::AddRecord(uint32_t group,
                                              const Point& record) {
  if (!ValidGroup(group)) {
    return Status::InvalidArgument("unknown group id");
  }
  if (record.size() != dims_) {
    return Status::InvalidArgument("record dimensionality mismatch");
  }
  for (uint32_t h = 0; h < groups_.size(); ++h) {
    if (h == group) continue;
    // Count maintenance must apply atomically: aborting mid-scan would
    // leave the domination-count matrix inconsistent with the stored
    // records. Cost is O(live records) per delta, bounded by update
    // admission control — deltas run outside the query budget plane.
    // galaxy-analyze: allow(budget-reach)
    for (const Point& other : groups_[h].records) {
      if (skyline::Dominates(record, other)) ++CountRef(group, h);
      if (skyline::Dominates(other, record)) ++CountRef(h, group);
    }
  }
  groups_[group].records.push_back(record);
  ++total_records_;
  return Status::OK();
}

Status IncrementalAggregateSkyline::RemoveRecord(uint32_t group,
                                                 const Point& record) {
  if (!ValidGroup(group)) {
    return Status::InvalidArgument("unknown group id");
  }
  std::vector<Point>& records = groups_[group].records;
  size_t index = records.size();
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i] == record) {
      index = i;
      break;
    }
  }
  if (index == records.size()) {
    return Status::NotFound("record not present in group");
  }
  for (uint32_t h = 0; h < groups_.size(); ++h) {
    if (h == group) continue;
    // Same atomicity argument as AddRecord: the decrement scan must
    // complete or the count matrix no longer matches the stored records.
    // galaxy-analyze: allow(budget-reach)
    for (const Point& other : groups_[h].records) {
      if (skyline::Dominates(record, other)) --CountRef(group, h);
      if (skyline::Dominates(other, record)) --CountRef(h, group);
    }
  }
  records.erase(records.begin() + static_cast<long>(index));
  --total_records_;
  return Status::OK();
}

Result<uint64_t> IncrementalAggregateSkyline::DominationCount(
    uint32_t s, uint32_t r) const {
  if (!ValidGroup(s) || !ValidGroup(r) || s == r) {
    return Status::InvalidArgument("invalid group pair");
  }
  return CountAt(s, r);
}

Result<double> IncrementalAggregateSkyline::DominationProbability(
    uint32_t s, uint32_t r) const {
  GALAXY_ASSIGN_OR_RETURN(uint64_t count, DominationCount(s, r));
  uint64_t total = static_cast<uint64_t>(groups_[s].records.size()) *
                   groups_[r].records.size();
  if (total == 0) {
    return Status::InvalidArgument("both groups must be non-empty");
  }
  return static_cast<double>(count) / static_cast<double>(total);
}

Result<bool> IncrementalAggregateSkyline::IsDominated(uint32_t r) const {
  if (!ValidGroup(r)) return Status::InvalidArgument("unknown group id");
  if (groups_[r].records.empty()) {
    return Status::InvalidArgument("group is empty");
  }
  uint64_t nr = groups_[r].records.size();
  for (uint32_t s = 0; s < groups_.size(); ++s) {
    if (s == r || groups_[s].records.empty()) continue;
    uint64_t total = groups_[s].records.size() * nr;
    uint64_t count = CountAt(s, r);
    if (count == total ||
        static_cast<double>(count) > gamma_ * static_cast<double>(total)) {
      return true;
    }
  }
  return false;
}

std::vector<uint32_t> IncrementalAggregateSkyline::Skyline() const {
  std::vector<uint32_t> out;
  for (uint32_t r = 0; r < groups_.size(); ++r) {
    if (groups_[r].records.empty()) continue;
    Result<bool> dominated = IsDominated(r);
    if (dominated.ok() && !*dominated) out.push_back(r);
  }
  return out;
}

}  // namespace galaxy::core
