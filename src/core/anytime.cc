#include "core/anytime.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace galaxy::core {

// Resumable state of one group-pair comparison: exact counts over the
// prefix of record pairs inspected so far, plus the cursor into the
// residual record lists (after optional MBB pre-classification).
struct AnytimeAggregateSkyline::PairState {
  uint32_t g1 = 0;
  uint32_t g2 = 0;
  uint64_t total = 0;
  uint64_t n12 = 0;
  uint64_t n21 = 0;
  uint64_t resolved = 0;
  std::vector<uint32_t> rest1;
  std::vector<uint32_t> rest2;
  size_t pos1 = 0;  // current row (index into rest1)
  size_t pos2 = 0;  // current column (index into rest2)
  bool decided = false;
  PairOutcome outcome = PairOutcome::kIncomparable;
};

AnytimeAggregateSkyline::AnytimeAggregateSkyline(const GroupedDataset& dataset,
                                                 const Options& options)
    : dataset_(&dataset),
      options_(options),
      thresholds_(GammaThresholds::FromGamma(options.gamma)),
      dominated_(dataset.num_groups(), 0),
      undecided_per_group_(dataset.num_groups(), 0) {
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  pairs_.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      PairState state;
      state.g1 = i;
      state.g2 = j;
      const Group& a = dataset.group(i);
      const Group& b = dataset.group(j);
      state.total = static_cast<uint64_t>(a.size()) * b.size();

      // An empty group neither dominates nor is dominated (Definition 3's
      // probability is undefined there); its MBB corners are ±infinity, so
      // the corner tests below would wrongly see strong domination. Mirror
      // ClassifyPair's guard and decide the pair as incomparable up front.
      if (state.total == 0) {
        state.decided = true;
        state.outcome = PairOutcome::kIncomparable;
        pairs_.push_back(std::move(state));
        continue;
      }

      // Once the control plane has stopped, fall back to the cheap setup
      // path (plain cursors, no corner tests): still sound, the pair is
      // merely left fully undecided.
      const bool preclassify =
          options_.use_mbb &&
          !(options_.exec != nullptr && options_.exec->stopped());
      if (preclassify) {
        // Corner-only decisions (Figure 9(b)).
        if (skyline::Dominates(b.mbb().min, a.mbb().max)) {
          state.decided = true;
          state.outcome = PairOutcome::kSecondDominatesStrongly;
        } else if (skyline::Dominates(a.mbb().min, b.mbb().max)) {
          state.decided = true;
          state.outcome = PairOutcome::kFirstDominatesStrongly;
        } else {
          // Region pre-classification (Figure 9(c)); see ClassifyPair.
          uint64_t a2 = 0, c1 = 0;
          for (uint32_t r = 0; r < a.size(); ++r) {
            auto p = a.point(r);
            if (skyline::Dominates(b.mbb().min, p)) {
              ++a2;
            } else if (skyline::Dominates(p, b.mbb().max)) {
              ++c1;
            } else {
              state.rest1.push_back(r);
            }
          }
          uint64_t a1 = 0, c2 = 0;
          for (uint32_t s = 0; s < b.size(); ++s) {
            auto p = b.point(s);
            if (skyline::Dominates(a.mbb().min, p)) {
              ++a1;
            } else if (skyline::Dominates(p, a.mbb().max)) {
              ++c2;
            } else {
              state.rest2.push_back(s);
            }
          }
          state.n12 = a1 * a.size() + c1 * (b.size() - a1);
          state.n21 = a2 * b.size() + c2 * (a.size() - a2);
          state.resolved =
              state.total -
              static_cast<uint64_t>(state.rest1.size()) * state.rest2.size();
          comparisons_used_ += 2 * (a.size() + b.size());
          if (options_.exec != nullptr) {
            options_.exec->Charge(2 * (a.size() + b.size()));
          }
        }
      } else {
        state.rest1.resize(a.size());
        state.rest2.resize(b.size());
        for (uint32_t r = 0; r < a.size(); ++r) state.rest1[r] = r;
        for (uint32_t s = 0; s < b.size(); ++s) state.rest2[s] = s;
      }

      if (!state.decided &&
          internal::TryResolveOutcome(state.n12, state.n21, state.resolved,
                                      state.total, thresholds_,
                                      &state.outcome)) {
        state.decided = true;
      }
      if (state.decided) {
        switch (state.outcome) {
          case PairOutcome::kFirstDominates:
          case PairOutcome::kFirstDominatesStrongly:
            dominated_[j] = 1;
            break;
          case PairOutcome::kSecondDominates:
          case PairOutcome::kSecondDominatesStrongly:
            dominated_[i] = 1;
            break;
          default:
            break;
        }
      } else {
        ++undecided_per_group_[i];
        ++undecided_per_group_[j];
        active_.push_back(static_cast<uint32_t>(pairs_.size()));
      }
      pairs_.push_back(std::move(state));
    }
  }
  complete_ = active_.empty();
}

AnytimeAggregateSkyline::~AnytimeAggregateSkyline() = default;

AnytimeAggregateSkyline::Snapshot AnytimeAggregateSkyline::Advance(
    uint64_t comparison_budget) {
  uint64_t remaining = comparison_budget;
  while (remaining > 0 && !active_.empty()) {
    size_t keep = 0;
    for (size_t a = 0; a < active_.size(); ++a) {
      uint32_t idx = active_[a];
      PairState& pair = pairs_[idx];

      auto finish_pair = [&](bool relevant) {
        pair.decided = true;
        if (relevant) {
          switch (pair.outcome) {
            case PairOutcome::kFirstDominates:
            case PairOutcome::kFirstDominatesStrongly:
              dominated_[pair.g2] = 1;
              break;
            case PairOutcome::kSecondDominates:
            case PairOutcome::kSecondDominatesStrongly:
              dominated_[pair.g1] = 1;
              break;
            default:
              break;
          }
        }
        --undecided_per_group_[pair.g1];
        --undecided_per_group_[pair.g2];
      };

      // A pair between two already-dominated groups can no longer change
      // either result set; drop it without spending budget.
      if (dominated_[pair.g1] != 0 && dominated_[pair.g2] != 0) {
        pair.outcome = PairOutcome::kIncomparable;  // unknown, irrelevant
        finish_pair(/*relevant=*/false);
        continue;
      }
      if (remaining == 0) {
        active_[keep++] = idx;
        continue;
      }

      const Group& a_group = dataset_->group(pair.g1);
      const Group& b_group = dataset_->group(pair.g2);
      uint64_t slice = std::min<uint64_t>(options_.slice, remaining);
      const uint64_t slice_start = comparisons_used_;
      while (slice > 0 && !pair.decided) {
        auto r = a_group.point(pair.rest1[pair.pos1]);
        auto s = b_group.point(pair.rest2[pair.pos2]);
        skyline::DominanceResult cmp = skyline::CompareDominance(r, s);
        if (cmp == skyline::DominanceResult::kLeftDominates) {
          ++pair.n12;
        } else if (cmp == skyline::DominanceResult::kRightDominates) {
          ++pair.n21;
        }
        ++pair.resolved;
        ++comparisons_used_;
        --slice;
        --remaining;
        // Advance the cursor (row-major over rest1 x rest2).
        if (++pair.pos2 == pair.rest2.size()) {
          pair.pos2 = 0;
          ++pair.pos1;
          // End of a row: check the stopping rule.
          if (internal::TryResolveOutcome(pair.n12, pair.n21, pair.resolved,
                                          pair.total, thresholds_,
                                          &pair.outcome)) {
            finish_pair(/*relevant=*/true);
            break;
          }
        }
      }
      if (!pair.decided &&
          internal::TryResolveOutcome(pair.n12, pair.n21, pair.resolved,
                                      pair.total, thresholds_,
                                      &pair.outcome)) {
        finish_pair(/*relevant=*/true);
      }
      if (!pair.decided) active_[keep++] = idx;
      // Charge the slice to the control plane; on a trip, drain the rest
      // of the budget so Advance returns after at most one more pass of
      // bookkeeping. The snapshot stays sound at any stopping point.
      if (options_.exec != nullptr &&
          !options_.exec->Charge(comparisons_used_ - slice_start)) {
        remaining = 0;
      }
    }
    active_.resize(keep);
  }
  complete_ = active_.empty();
  Snapshot snapshot;
  RebuildSnapshot(&snapshot);
  return snapshot;
}

AnytimeAggregateSkyline::Snapshot AnytimeAggregateSkyline::Current() const {
  Snapshot snapshot;
  RebuildSnapshot(&snapshot);
  return snapshot;
}

void AnytimeAggregateSkyline::RebuildSnapshot(Snapshot* snapshot) const {
  snapshot->possible.clear();
  snapshot->confirmed.clear();
  for (uint32_t g = 0; g < dominated_.size(); ++g) {
    if (dominated_[g] != 0) continue;
    snapshot->possible.push_back(g);
    if (undecided_per_group_[g] == 0) snapshot->confirmed.push_back(g);
  }
  snapshot->comparisons_used = comparisons_used_;
  snapshot->pairs_total = pairs_.size();
  uint64_t decided = 0;
  for (const PairState& pair : pairs_) {
    if (pair.decided) ++decided;
  }
  snapshot->pairs_decided = decided;
  snapshot->complete = complete_;
}

AnytimeAggregateSkyline::Snapshot ComputeAnytime(const GroupedDataset& dataset,
                                                 double gamma,
                                                 uint64_t comparison_budget) {
  AnytimeAggregateSkyline::Options options;
  options.gamma = gamma;
  AnytimeAggregateSkyline engine(dataset, options);
  return engine.Advance(comparison_budget);
}

}  // namespace galaxy::core
