#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "relation/table.h"
#include "skyline/dominance.h"

namespace galaxy::core {

/// A group of records ("star cluster"): the unit the aggregate skyline
/// ranks. Records are stored as a dense row-major buffer of doubles,
/// oriented so that larger is always better (MIN attributes are negated at
/// construction). The group's minimum bounding box (MBB) is precomputed —
/// it drives the sorted order (Algorithm 4), the window queries
/// (Algorithm 5) and the internal bounding-box optimization (Figure 9).
class Group {
 public:
  /// Builds a group; `data` is row-major with `size() == n * dims`. Empty
  /// groups (no records) are allowed: they neither dominate nor are
  /// dominated, and their MBB is the empty box (corners at ±infinity).
  Group(uint32_t id, std::string label, std::vector<double> data, size_t dims);
  ~Group();

  // The lazily cached score order (an atomic pointer) makes the implicit
  // special members unavailable; copies drop the cache, moves transfer it.
  Group(const Group& other);
  Group& operator=(const Group& other);
  Group(Group&& other) noexcept;
  Group& operator=(Group&& other) noexcept;

  uint32_t id() const { return id_; }
  const std::string& label() const { return label_; }
  size_t dims() const { return dims_; }
  size_t size() const { return size_; }

  /// The i-th record of the group.
  std::span<const double> point(size_t i) const {
    return {data_.data() + i * dims_, dims_};
  }

  /// Raw row-major record buffer.
  const std::vector<double>& data() const { return data_; }

  /// Minimum bounding box of the group's records.
  const Box& mbb() const { return mbb_; }

  /// Record indexes ordered by decreasing MonotoneScore (coordinate sum;
  /// the data is MAX-oriented), ties by ascending index. A record can only
  /// dominate records with a smaller score, so this is the probe order of
  /// the sorted counting kernel (core/count_kernel.h). Computed lazily on
  /// first use and cached for the group's lifetime; safe to call from
  /// concurrent threads (losers of the initialization race discard their
  /// copy).
  const std::vector<uint32_t>& score_order_desc() const;

 private:
  uint32_t id_;
  std::string label_;
  std::vector<double> data_;
  size_t dims_;
  size_t size_;
  Box mbb_;
  mutable std::atomic<const std::vector<uint32_t>*> score_order_{nullptr};
};

/// A partition of a record universe into groups — the input of the
/// aggregate skyline operator (the paper's U_g).
class GroupedDataset {
 public:
  GroupedDataset(size_t dims, std::vector<Group> groups)
      : dims_(dims), groups_(std::move(groups)) {}

  /// Groups the rows of `table` by the (composite) key formed by
  /// `group_columns` and projects `value_columns` (numeric) as the skyline
  /// attributes, applying `prefs` (empty = all MAX). Group labels are the
  /// key values joined with '|'. Groups appear in order of first occurrence.
  static Result<GroupedDataset> FromTable(
      const Table& table, const std::vector<std::string>& group_columns,
      const std::vector<std::string>& value_columns,
      const skyline::PreferenceList& prefs = {});

  /// Builds a dataset from explicit per-group point lists; labels default to
  /// "g<id>". Every point must have the same dimension. Individual groups
  /// may be empty, but at least one group must have a record (to fix the
  /// dimensionality).
  static GroupedDataset FromPoints(
      const std::vector<std::vector<Point>>& groups,
      const std::vector<std::string>& labels = {});

  /// Builds a dataset from per-group dense row-major buffers
  /// (`buffers[g].size() == n_g * dims`), already MAX-oriented. Labels
  /// default to "g<id>". This is the zero-densify handoff used by the
  /// batch SQL executor: column data gathered once, no Point boxing.
  static GroupedDataset FromDenseBuffers(
      size_t dims, std::vector<std::vector<double>> buffers,
      std::vector<std::string> labels = {});

  size_t dims() const { return dims_; }
  size_t num_groups() const { return groups_.size(); }
  const Group& group(size_t i) const { return groups_[i]; }
  const std::vector<Group>& groups() const { return groups_; }

  /// Total number of records across all groups.
  size_t total_records() const;

  /// Index of the group with the given label, or an error.
  Result<size_t> FindByLabel(const std::string& label) const;

 private:
  size_t dims_;
  std::vector<Group> groups_;
};

}  // namespace galaxy::core

