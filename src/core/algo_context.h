#pragma once

// Internal shared machinery of the aggregate-skyline algorithms. Not part
// of the public API; include core/aggregate_skyline.h instead.

#include <cstdint>
#include <vector>

#include "core/gamma.h"
#include "core/group.h"
#include "core/options.h"

namespace galaxy::core::internal {

/// Mutable state threaded through one aggregate-skyline run: the dominated /
/// strongly-dominated marks of every group plus accumulated work counters.
class AlgoContext {
 public:
  AlgoContext(const GroupedDataset& dataset,
              const AggregateSkylineOptions& options,
              AggregateSkylineStats* stats);

  const GroupedDataset& dataset() const { return *dataset_; }
  const AggregateSkylineOptions& options() const { return *options_; }
  AggregateSkylineStats* stats() { return stats_; }

  bool dominated(uint32_t id) const { return dominated_[id] != 0; }
  bool strongly_dominated(uint32_t id) const {
    return strongly_dominated_[id] != 0;
  }

  /// True when the algorithm may skip this group per weak transitivity
  /// (strongly dominated and pruning enabled).
  bool Skippable(uint32_t id) const {
    return options_->prune_strongly_dominated && strongly_dominated(id);
  }

  /// True once the governing ExecutionContext stopped the run; the
  /// algorithm bodies unwind immediately. Always false when no context is
  /// attached.
  bool interrupted() const {
    return options_->exec != nullptr && options_->exec->stopped();
  }

  /// Classifies the pair, applies the dominance marks, updates counters,
  /// and returns the outcome. If the control plane aborts the
  /// classification mid-pair, no mark is applied and kIncomparable is
  /// returned (interrupted() turns true).
  PairOutcome Compare(uint32_t id1, uint32_t id2);

  /// The groups still unmarked, ascending by id — the computed skyline.
  std::vector<uint32_t> Skyline() const;

  const std::vector<uint8_t>& dominated_flags() const { return dominated_; }
  const std::vector<uint8_t>& strong_flags() const {
    return strongly_dominated_;
  }

 private:
  const GroupedDataset* dataset_;
  const AggregateSkylineOptions* options_;
  GammaThresholds thresholds_;
  PairCompareOptions pair_options_;
  std::vector<uint8_t> dominated_;
  std::vector<uint8_t> strongly_dominated_;
  AggregateSkylineStats* stats_;
};

/// Returns group indexes in the probing order selected by `ordering`.
std::vector<uint32_t> OrderGroups(const GroupedDataset& dataset,
                                  GroupOrdering ordering);

/// Algorithm bodies (one per paper algorithm; see options.h).
void RunBruteForce(AlgoContext& ctx);
void RunNestedLoop(AlgoContext& ctx);
void RunTransitive(AlgoContext& ctx);
void RunSorted(AlgoContext& ctx);
void RunIndexed(AlgoContext& ctx);

}  // namespace galaxy::core::internal

