#include "core/exec_context.h"

namespace galaxy::core {

const char* ResultQualityToString(ResultQuality quality) {
  switch (quality) {
    case ResultQuality::kExact:
      return "exact";
    case ResultQuality::kApproximateSuperset:
      return "approximate-superset";
  }
  return "?";
}

void ExecutionContext::set_deadline(Clock::time_point deadline) {
  has_deadline_ = true;
  deadline_ = deadline;
  next_deadline_check_.store(0, std::memory_order_relaxed);
}

void ExecutionContext::set_timeout(std::chrono::milliseconds timeout) {
  set_deadline(Clock::now() + timeout);
}

void ExecutionContext::set_max_comparisons(uint64_t max_comparisons) {
  max_comparisons_ = max_comparisons;
}

void ExecutionContext::set_max_resident_bytes(uint64_t max_bytes) {
  max_resident_bytes_ = max_bytes;
}

void ExecutionContext::Trip(StopReason reason) {
  int expected = static_cast<int>(StopReason::kNone);
  // First trip wins; stopped_ is latched after the reason so status() never
  // observes a stopped context without a reason.
  stop_reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed);
  stopped_.store(true, std::memory_order_release);
}

Status ExecutionContext::status() const {
  if (!stopped_.load(std::memory_order_acquire)) return Status::OK();
  switch (static_cast<StopReason>(
      stop_reason_.load(std::memory_order_relaxed))) {
    case StopReason::kCancelled:
      return Status::Cancelled("execution cancelled");
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("deadline exceeded");
    case StopReason::kComparisonBudget:
      return Status::ResourceExhausted("comparison budget exhausted");
    case StopReason::kMemoryBudget:
      return Status::ResourceExhausted("resident-memory budget exhausted");
    case StopReason::kNone:
      break;
  }
  return Status::Internal("execution stopped without a recorded reason");
}

bool ExecutionContext::degradable_trip() const {
  if (!stopped_.load(std::memory_order_acquire)) return false;
  switch (static_cast<StopReason>(
      stop_reason_.load(std::memory_order_relaxed))) {
    case StopReason::kCancelled:
    case StopReason::kDeadlineExceeded:
    case StopReason::kComparisonBudget:
      return true;
    case StopReason::kMemoryBudget:
    case StopReason::kNone:
      break;
  }
  return false;
}

bool ExecutionContext::Charge(uint64_t n) {
  uint64_t total = n == 0
                       ? comparisons_.load(std::memory_order_relaxed)
                       : comparisons_.fetch_add(
                             n, std::memory_order_relaxed) + n;
  if (stopped_.load(std::memory_order_relaxed)) return false;

  // Injected faults are checked before the real limits so a harness can
  // pin the exact reason at a chosen comparison count.
  if (total >= cancel_at_) {
    Trip(StopReason::kCancelled);
    return false;
  }
  if (total >= deadline_at_) {
    Trip(StopReason::kDeadlineExceeded);
    return false;
  }
  if (total > max_comparisons_) {
    Trip(StopReason::kComparisonBudget);
    return false;
  }
  if (has_deadline_) {
    // Amortized wall-clock poll: at most one clock read per
    // kDeadlineCheckInterval charged units across all threads.
    uint64_t due = next_deadline_check_.load(std::memory_order_relaxed);
    if (total >= due &&
        next_deadline_check_.compare_exchange_strong(
            due, total + kDeadlineCheckInterval,
            std::memory_order_relaxed)) {
      if (Clock::now() >= deadline_) {
        Trip(StopReason::kDeadlineExceeded);
        return false;
      }
    }
  }
  return true;
}

Status ExecutionContext::ReserveBytes(uint64_t bytes) {
  uint64_t now =
      resident_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (now > max_resident_bytes_) {
    resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    Trip(StopReason::kMemoryBudget);
    return status();
  }
  return Status::OK();
}

void ExecutionContext::ReleaseBytes(uint64_t bytes) {
  resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status ScopedReservation::Reserve(ExecutionContext* exec, uint64_t bytes) {
  Release();
  if (exec == nullptr) return Status::OK();
  Status status = exec->ReserveBytes(bytes);
  if (status.ok()) {
    exec_ = exec;
    bytes_ = bytes;
  }
  return status;
}

void ScopedReservation::Release() {
  if (exec_ != nullptr) {
    exec_->ReleaseBytes(bytes_);
    exec_ = nullptr;
    bytes_ = 0;
  }
}

}  // namespace galaxy::core
