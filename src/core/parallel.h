#pragma once

#include <cstddef>
#include <cstdint>

#include "core/aggregate_skyline.h"
#include "core/count_kernel.h"
#include "core/group.h"

namespace galaxy::core {

/// Options for the multi-threaded aggregate skyline.
struct ParallelOptions {
  double gamma = 0.5;
  /// Units of parallelism (the caller counts as one; the remainder runs on
  /// the shared persistent pool, core/thread_pool.h);
  /// 0 = std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Internal optimizations, as in AggregateSkylineOptions.
  bool use_stop_rule = true;
  bool use_mbb = false;
  /// Counting kernel for the pairwise residual scans (see
  /// AggregateSkylineOptions::kernel).
  KernelPolicy kernel = KernelPolicy::kAuto;
  /// Group pairs claimed per scheduler interaction (work-stealing chunk).
  /// Small chunks balance skewed group sizes; large chunks cut locking.
  /// 0 = default (8).
  uint64_t pair_chunk = 0;
  /// When true, threads opportunistically skip pairs whose both endpoints
  /// are already marked strongly dominated (sound: such a pair cannot
  /// change any mark, so the skyline AND the dominated / strongly_dominated
  /// vectors stay exact). Only the work saved is schedule-dependent.
  bool skip_settled_pairs = true;
  /// Optional execution control plane shared by every worker. Once it
  /// stops, each worker unwinds within one charge batch; marks recorded up
  /// to that point are all true dominations, so the partial result is a
  /// sound superset. Null = unbounded.
  ExecutionContext* exec = nullptr;
};

/// Computes the exact aggregate skyline (Definition 2) with the group-pair
/// triangle dynamically partitioned across the persistent worker pool
/// (chunked work stealing — no per-call thread spawn, and skewed group
/// sizes rebalance instead of serializing on one unlucky stripe);
/// dominance marks are shared atomically. Semantics equal Algorithm 2
/// (every pair with a possible effect on the result is classified), so
/// the result is exact — the parallel counterpart of the
/// distributed-skyline direction in the paper's related work.
AggregateSkylineResult ComputeAggregateSkylineParallel(
    const GroupedDataset& dataset, const ParallelOptions& options = {});

}  // namespace galaxy::core

