#pragma once

#include <cstddef>
#include <cstdint>

#include "core/aggregate_skyline.h"
#include "core/count_kernel.h"
#include "core/group.h"

namespace galaxy::core {

/// Options for the multi-threaded aggregate skyline.
struct ParallelOptions {
  double gamma = 0.5;
  /// Units of parallelism (the caller counts as one; the remainder runs on
  /// the shared persistent pool, core/thread_pool.h);
  /// 0 = std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Internal optimizations, as in AggregateSkylineOptions.
  bool use_stop_rule = true;
  bool use_mbb = false;
  /// Counting kernel for the pairwise residual scans (see
  /// AggregateSkylineOptions::kernel).
  KernelPolicy kernel = KernelPolicy::kAuto;
  /// Group pairs claimed per scheduler interaction (work-stealing chunk).
  /// 0 = adaptive: chunks are sized by estimated pair cost (the product of
  /// the two group cardinalities) so one claim carries roughly
  /// `chunk_cost_target` record pairs — small chunks where groups are
  /// giant, big chunks across runs of tiny groups. An explicit value fixes
  /// the legacy constant pair count per claim.
  uint64_t pair_chunk = 0;
  /// Estimated record pairs per adaptive work-stealing claim (only used
  /// when pair_chunk == 0). 0 = default (1 << 16).
  uint64_t chunk_cost_target = 0;
  /// Total estimated cost (record pairs across the whole triangle, with a
  /// floor of one per group pair) below which the call runs inline on the
  /// calling thread without waking the pool: small workloads lose more to
  /// scheduler wakeups than they gain from parallelism. 0 = default
  /// (1 << 21); 1 = never run inline (the pool is always used).
  uint64_t sequential_cutoff_cost = 0;
  /// Estimated cost from which a single pair's cache-blocked tile grid is
  /// split across all workers (intra-pair parallelism), so one giant
  /// Zipf-head pair cannot serialize the run. 0 = default (1 << 20);
  /// UINT64_MAX disables intra-pair splitting. Split pairs always scan
  /// with the tiled kernel; the outcome is identical for every kernel.
  uint64_t giant_pair_min_cost = 0;
  /// When true, threads opportunistically skip pairs whose both endpoints
  /// are already marked strongly dominated (sound: such a pair cannot
  /// change any mark, so the skyline AND the dominated / strongly_dominated
  /// vectors stay exact). Only the work saved is schedule-dependent.
  bool skip_settled_pairs = true;
  /// Optional execution control plane shared by every worker. Once it
  /// stops, each worker unwinds within one charge batch; marks recorded up
  /// to that point are all true dominations, so the partial result is a
  /// sound superset. Null = unbounded.
  ExecutionContext* exec = nullptr;
};

/// Computes the exact aggregate skyline (Definition 2) with the group-pair
/// triangle dynamically partitioned across the persistent worker pool
/// (chunked work stealing — no per-call thread spawn, and skewed group
/// sizes rebalance instead of serializing on one unlucky stripe);
/// dominance marks are shared atomically. Semantics equal Algorithm 2
/// (every pair with a possible effect on the result is classified), so
/// the result is exact — the parallel counterpart of the
/// distributed-skyline direction in the paper's related work.
AggregateSkylineResult ComputeAggregateSkylineParallel(
    const GroupedDataset& dataset, const ParallelOptions& options = {});

}  // namespace galaxy::core

