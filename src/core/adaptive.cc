#include "core/adaptive.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace galaxy::core {

std::string WorkloadProfile::ToString() const {
  std::string out;
  out += "groups=" + std::to_string(num_groups);
  out += " records=" + std::to_string(total_records);
  out += " avg_size=" + FormatDouble(avg_group_size, 2);
  out += " max_share=" + FormatDouble(max_group_share, 4);
  out += " window_selectivity=" + FormatDouble(window_selectivity, 4);
  return out;
}

WorkloadProfile ProfileWorkload(const GroupedDataset& dataset,
                                size_t sample_size, ExecutionContext* exec) {
  WorkloadProfile profile;
  profile.num_groups = dataset.num_groups();
  profile.total_records = dataset.total_records();
  if (profile.num_groups == 0) return profile;
  profile.avg_group_size = static_cast<double>(profile.total_records) /
                           static_cast<double>(profile.num_groups);
  size_t max_size = 0;
  for (const Group& g : dataset.groups()) {
    max_size = std::max(max_size, g.size());
  }
  profile.max_group_share = static_cast<double>(max_size) /
                            static_cast<double>(profile.total_records);

  if (profile.num_groups < 2) return profile;

  // Window selectivity: how many groups' max corners weakly dominate a
  // probe group's min corner, i.e. how much Algorithm 5's window query
  // actually filters.
  Rng rng(0x5eed, /*stream=*/3);
  size_t samples = std::min(sample_size, profile.num_groups);
  uint64_t candidates = 0;
  uint64_t considered = 0;
  const size_t dims = dataset.dims();
  for (size_t s = 0; s < samples; ++s) {
    // One window-containment check per group ≈ one charged comparison; a
    // trip truncates the sample, it does not invalidate the estimate.
    if (exec != nullptr && !exec->Charge(profile.num_groups)) break;
    size_t probe = samples == profile.num_groups
                       ? s
                       : static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int64_t>(profile.num_groups) - 1));
    const Box& probe_box = dataset.group(probe).mbb();
    for (size_t g = 0; g < profile.num_groups; ++g) {
      if (g == probe) continue;
      ++considered;
      const Box& other = dataset.group(g).mbb();
      bool in_window = true;
      for (size_t d = 0; d < dims; ++d) {
        if (other.max[d] < probe_box.min[d]) {
          in_window = false;
          break;
        }
      }
      if (in_window) ++candidates;
    }
  }
  profile.window_selectivity =
      considered == 0 ? 0.0
                      : static_cast<double>(candidates) /
                            static_cast<double>(considered);
  return profile;
}

AdaptiveChoice ChooseAlgorithm(const WorkloadProfile& profile,
                               double selectivity_threshold,
                               double skew_threshold_factor) {
  AdaptiveChoice choice;
  choice.algorithm = profile.window_selectivity > selectivity_threshold
                         ? Algorithm::kSorted
                         : Algorithm::kIndexedBbox;
  double balanced_share =
      profile.num_groups == 0 ? 1.0
                              : 1.0 / static_cast<double>(profile.num_groups);
  choice.ordering =
      profile.max_group_share > skew_threshold_factor * balanced_share
          ? GroupOrdering::kSmallestFirstThenCorner
          : GroupOrdering::kCornerDistance;
  return choice;
}

}  // namespace galaxy::core
