#include "core/domination_matrix.h"

#include <utility>

#include "common/logging.h"

namespace galaxy::core {

DominationMatrix::DominationMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0) {}

DominationMatrix DominationMatrix::Build(const Group& r, const Group& s) {
  GALAXY_CHECK_EQ(r.dims(), s.dims());
  DominationMatrix m(r.size(), s.size());
  for (size_t i = 0; i < r.size(); ++i) {
    auto ri = r.point(i);
    for (size_t j = 0; j < s.size(); ++j) {
      if (skyline::Dominates(ri, s.point(j))) m.set(i, j, true);
    }
  }
  return m;
}

Result<DominationMatrix> DominationMatrix::TryBuild(const Group& r,
                                                    const Group& s,
                                                    ExecutionContext* exec) {
  if (r.dims() != s.dims()) {
    return Status::InvalidArgument("domination matrix of mismatched dims");
  }
  auto reservation = std::make_shared<ScopedReservation>();
  const uint64_t bytes = static_cast<uint64_t>(r.size()) * s.size();
  GALAXY_RETURN_IF_ERROR(reservation->Reserve(exec, bytes));
  DominationMatrix m = Build(r, s);
  m.reservation_ = std::move(reservation);
  return m;
}

uint64_t DominationMatrix::CountPositive() const {
  uint64_t count = 0;
  for (uint8_t c : cells_) count += c;
  return count;
}

double DominationMatrix::pos() const {
  if (cells_.empty()) return 0.0;
  return static_cast<double>(CountPositive()) /
         static_cast<double>(cells_.size());
}

DominationMatrix DominationMatrix::BooleanProduct(
    const DominationMatrix& other) const {
  GALAXY_CHECK_EQ(cols_, other.rows_);
  DominationMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      if (!at(i, j)) continue;
      for (size_t k = 0; k < other.cols_; ++k) {
        if (other.at(j, k)) out.set(i, k, true);
      }
    }
  }
  return out;
}

std::string DominationMatrix::ToString() const {
  std::string out;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out += at(i, j) ? '1' : '0';
      out += j + 1 < cols_ ? ' ' : '\n';
    }
  }
  return out;
}

}  // namespace galaxy::core
