#include "core/count_kernel.h"

// galaxy-lint: allow-file(budget-charge) — kernels here are the
// innermost tiles and deliberately branch-free; the budget is charged
// per tile by the callers (gamma.cc ChargeState and the algorithm
// drivers), not per pair inside the tile.

#include <algorithm>
#include <numeric>

namespace galaxy::core {

const char* KernelPolicyToString(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::kAuto:
      return "auto";
    case KernelPolicy::kScalar:
      return "scalar";
    case KernelPolicy::kTiled:
      return "tiled";
    case KernelPolicy::kSorted:
      return "sorted";
    case KernelPolicy::kSweep2D:
      return "sweep2d";
  }
  return "?";
}

namespace kernel {

// Runtime SIMD dispatch: GCC/Clang on x86-64 Linux resolve the best clone
// through an ifunc at load time, so portable builds still pick up AVX2 on
// capable hosts. Elsewhere the attribute compiles away to nothing.
// ThreadSanitizer cannot run instrumented ifunc resolvers (they execute
// during relocation, before the TSan runtime initializes — instant
// segfault on GCC), so TSan builds use the plain default-ISA functions.
#if defined(__SANITIZE_THREAD__)
#define GALAXY_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GALAXY_TSAN 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(GALAXY_TSAN)
#define GALAXY_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2")))
#else
#define GALAXY_KERNEL_CLONES
#endif

#if defined(__GNUC__) || defined(__clang__)
#define GALAXY_FORCE_INLINE [[gnu::always_inline]] inline
#else
#define GALAXY_FORCE_INLINE inline
#endif

namespace {

// Two-way branch-free pair test, unrolled for a compile-time dimension.
// No early exit: the straight-line body lets the compiler vectorize the
// inner j-loop, which beats the branchy short-circuit loop even though it
// always touches all d attributes.
template <int D>
GALAXY_FORCE_INLINE void CountBlockFixed(const double* rows1, size_t n1,
                                         const double* rows2, size_t n2,
                                         uint64_t* n12, uint64_t* n21) {
  uint64_t c12 = 0;
  uint64_t c21 = 0;
  for (size_t i = 0; i < n1; ++i) {
    const double* a = rows1 + i * D;
    for (size_t j = 0; j < n2; ++j) {
      const double* b = rows2 + j * D;
      bool a_gt = false;
      bool b_gt = false;
      for (int k = 0; k < D; ++k) {
        a_gt |= a[k] > b[k];
        b_gt |= b[k] > a[k];
      }
      c12 += static_cast<uint64_t>(a_gt & !b_gt);
      c21 += static_cast<uint64_t>(b_gt & !a_gt);
    }
  }
  *n12 += c12;
  *n21 += c21;
}

GALAXY_FORCE_INLINE void CountBlockGeneric(const double* rows1, size_t n1,
                                           const double* rows2, size_t n2,
                                           size_t dims, uint64_t* n12,
                                           uint64_t* n21) {
  uint64_t c12 = 0;
  uint64_t c21 = 0;
  for (size_t i = 0; i < n1; ++i) {
    const double* a = rows1 + i * dims;
    for (size_t j = 0; j < n2; ++j) {
      const double* b = rows2 + j * dims;
      bool a_gt = false;
      bool b_gt = false;
      for (size_t k = 0; k < dims; ++k) {
        a_gt |= a[k] > b[k];
        b_gt |= b[k] > a[k];
      }
      c12 += static_cast<uint64_t>(a_gt & !b_gt);
      c21 += static_cast<uint64_t>(b_gt & !a_gt);
    }
  }
  *n12 += c12;
  *n21 += c21;
}

// One concrete, clonable function per specialized dimension (target_clones
// does not apply to templates; the fixed-D body inlines into each clone).
#define GALAXY_DEFINE_BLOCK_KERNEL(D)                                       \
  GALAXY_KERNEL_CLONES void CountBlock##D(const double* r1, size_t n1,      \
                                          const double* r2, size_t n2,      \
                                          uint64_t* n12, uint64_t* n21) {   \
    CountBlockFixed<D>(r1, n1, r2, n2, n12, n21);                           \
  }
GALAXY_DEFINE_BLOCK_KERNEL(2)
GALAXY_DEFINE_BLOCK_KERNEL(3)
GALAXY_DEFINE_BLOCK_KERNEL(4)
GALAXY_DEFINE_BLOCK_KERNEL(5)
GALAXY_DEFINE_BLOCK_KERNEL(6)
GALAXY_DEFINE_BLOCK_KERNEL(7)
GALAXY_DEFINE_BLOCK_KERNEL(8)
#undef GALAXY_DEFINE_BLOCK_KERNEL

GALAXY_KERNEL_CLONES void CountBlockAnyDim(const double* r1, size_t n1,
                                           const double* r2, size_t n2,
                                           size_t dims, uint64_t* n12,
                                           uint64_t* n21) {
  CountBlockGeneric(r1, n1, r2, n2, dims, n12, n21);
}

// One-way counting under the sorted path's strict-score guarantee: no row
// equals r, so dominance collapses to componentwise >=.
template <int D>
GALAXY_FORCE_INLINE uint64_t CountGeqFixed(const double* r,
                                           const double* rows, size_t n,
                                           bool r_on_left) {
  uint64_t count = 0;
  for (size_t j = 0; j < n; ++j) {
    const double* b = rows + j * D;
    bool geq = true;
    for (int k = 0; k < D; ++k) {
      geq &= r_on_left ? r[k] >= b[k] : b[k] >= r[k];
    }
    count += static_cast<uint64_t>(geq);
  }
  return count;
}

GALAXY_FORCE_INLINE uint64_t CountGeqGeneric(const double* r,
                                             const double* rows, size_t n,
                                             size_t dims, bool r_on_left) {
  uint64_t count = 0;
  for (size_t j = 0; j < n; ++j) {
    const double* b = rows + j * dims;
    bool geq = true;
    for (size_t k = 0; k < dims; ++k) {
      geq &= r_on_left ? r[k] >= b[k] : b[k] >= r[k];
    }
    count += static_cast<uint64_t>(geq);
  }
  return count;
}

#define GALAXY_DEFINE_GEQ_KERNEL(D)                                         \
  GALAXY_KERNEL_CLONES uint64_t CountGeqLeft##D(                            \
      const double* r, const double* rows, size_t n) {                      \
    return CountGeqFixed<D>(r, rows, n, true);                              \
  }                                                                         \
  GALAXY_KERNEL_CLONES uint64_t CountGeqRight##D(                           \
      const double* r, const double* rows, size_t n) {                      \
    return CountGeqFixed<D>(r, rows, n, false);                             \
  }
GALAXY_DEFINE_GEQ_KERNEL(2)
GALAXY_DEFINE_GEQ_KERNEL(3)
GALAXY_DEFINE_GEQ_KERNEL(4)
GALAXY_DEFINE_GEQ_KERNEL(5)
GALAXY_DEFINE_GEQ_KERNEL(6)
GALAXY_DEFINE_GEQ_KERNEL(7)
GALAXY_DEFINE_GEQ_KERNEL(8)
#undef GALAXY_DEFINE_GEQ_KERNEL

GALAXY_KERNEL_CLONES uint64_t CountGeqAnyDim(const double* r,
                                             const double* rows, size_t n,
                                             size_t dims, bool r_on_left) {
  return CountGeqGeneric(r, rows, n, dims, r_on_left);
}

}  // namespace

KernelCounts CountBlock(const double* rows1, size_t n1, const double* rows2,
                        size_t n2, size_t dims) {
  KernelCounts c;
  if (n1 == 0 || n2 == 0) return c;
  switch (dims) {
    case 2:
      CountBlock2(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    case 3:
      CountBlock3(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    case 4:
      CountBlock4(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    case 5:
      CountBlock5(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    case 6:
      CountBlock6(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    case 7:
      CountBlock7(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    case 8:
      CountBlock8(rows1, n1, rows2, n2, &c.n12, &c.n21);
      break;
    default:
      CountBlockAnyDim(rows1, n1, rows2, n2, dims, &c.n12, &c.n21);
      break;
  }
  return c;
}

uint64_t CountDominatedOneWay(const double* r, const double* rows, size_t n,
                              size_t dims) {
  if (n == 0) return 0;
  switch (dims) {
    case 2:
      return CountGeqLeft2(r, rows, n);
    case 3:
      return CountGeqLeft3(r, rows, n);
    case 4:
      return CountGeqLeft4(r, rows, n);
    case 5:
      return CountGeqLeft5(r, rows, n);
    case 6:
      return CountGeqLeft6(r, rows, n);
    case 7:
      return CountGeqLeft7(r, rows, n);
    case 8:
      return CountGeqLeft8(r, rows, n);
    default:
      return CountGeqAnyDim(r, rows, n, dims, true);
  }
}

uint64_t CountDominatingOneWay(const double* r, const double* rows, size_t n,
                               size_t dims) {
  if (n == 0) return 0;
  switch (dims) {
    case 2:
      return CountGeqRight2(r, rows, n);
    case 3:
      return CountGeqRight3(r, rows, n);
    case 4:
      return CountGeqRight4(r, rows, n);
    case 5:
      return CountGeqRight5(r, rows, n);
    case 6:
      return CountGeqRight6(r, rows, n);
    case 7:
      return CountGeqRight7(r, rows, n);
    case 8:
      return CountGeqRight8(r, rows, n);
    default:
      return CountGeqAnyDim(r, rows, n, dims, false);
  }
}

bool GeqAll(const double* a, const double* b, size_t dims) {
  for (size_t k = 0; k < dims; ++k) {
    if (a[k] < b[k]) return false;
  }
  return true;
}

void GatherRows(const double* data, const uint32_t* idx, size_t n,
                size_t dims, std::vector<double>* out) {
  out->resize(n * dims);
  double* dst = out->data();
  for (size_t i = 0; i < n; ++i) {
    const double* src = data + static_cast<size_t>(idx[i]) * dims;
    for (size_t k = 0; k < dims; ++k) dst[k] = src[k];
    dst += dims;
  }
}

double RowScore(const double* row, size_t dims) {
  double s = 0.0;
  for (size_t k = 0; k < dims; ++k) s += row[k];
  return s;
}

void SortByScoreDesc(const double* rows, size_t n, size_t dims,
                     std::vector<uint32_t>* order,
                     std::vector<double>* scores) {
  order->resize(n);
  std::iota(order->begin(), order->end(), uint32_t{0});
  std::vector<double> raw(n);
  for (size_t i = 0; i < n; ++i) raw[i] = RowScore(rows + i * dims, dims);
  std::sort(order->begin(), order->end(), [&](uint32_t a, uint32_t b) {
    if (raw[a] != raw[b]) return raw[a] > raw[b];
    return a < b;
  });
  scores->resize(n);
  for (size_t i = 0; i < n; ++i) (*scores)[i] = raw[(*order)[i]];
}

void BuildSuffixMax(const double* rows, size_t n, size_t dims,
                    std::vector<double>* out) {
  out->resize(n * dims);
  if (n == 0) return;
  double* o = out->data();
  for (size_t k = 0; k < dims; ++k) {
    o[(n - 1) * dims + k] = rows[(n - 1) * dims + k];
  }
  for (size_t i = n - 1; i-- > 0;) {
    for (size_t k = 0; k < dims; ++k) {
      o[i * dims + k] =
          std::max(rows[i * dims + k], o[(i + 1) * dims + k]);
    }
  }
}

void BuildPrefixMin(const double* rows, size_t n, size_t dims,
                    std::vector<double>* out) {
  out->resize(n * dims);
  if (n == 0) return;
  double* o = out->data();
  for (size_t k = 0; k < dims; ++k) o[k] = rows[k];
  for (size_t i = 1; i < n; ++i) {
    for (size_t k = 0; k < dims; ++k) {
      o[i * dims + k] =
          std::min(rows[i * dims + k], o[(i - 1) * dims + k]);
    }
  }
}

namespace {

// Counts ordered pairs (a in A, b in B) with a.x >= b.x and a.y >= b.y via
// one descending-x sweep with a Fenwick tree over compressed A-y ranks.
// Ties on x insert the A point first (>= admits equality).
uint64_t CountGe2D(const double* xs_a, const double* ys_a, size_t na,
                   const size_t* order_a, const double* xs_b,
                   const double* ys_b, size_t nb, const size_t* order_b,
                   Sweep2DScratch* scratch) {
  if (na == 0 || nb == 0) return 0;
  std::vector<double>& uy = scratch->unique_y;
  uy.assign(ys_a, ys_a + na);
  std::sort(uy.begin(), uy.end());
  uy.erase(std::unique(uy.begin(), uy.end()), uy.end());

  std::vector<uint32_t>& fen = scratch->fenwick;
  fen.assign(uy.size() + 1, 0);
  auto add = [&](double y) {
    size_t r =
        static_cast<size_t>(std::lower_bound(uy.begin(), uy.end(), y) -
                            uy.begin()) +
        1;
    for (; r < fen.size(); r += r & (~r + 1)) ++fen[r];
  };
  // Number of inserted A-ys strictly below y.
  auto count_below = [&](double y) {
    size_t r = static_cast<size_t>(
        std::lower_bound(uy.begin(), uy.end(), y) - uy.begin());
    uint64_t s = 0;
    for (; r > 0; r -= r & (~r + 1)) s += fen[r];
    return s;
  };

  uint64_t total = 0;
  uint64_t inserted = 0;
  size_t ia = 0;
  for (size_t ib = 0; ib < nb; ++ib) {
    const size_t b = order_b[ib];
    while (ia < na && xs_a[order_a[ia]] >= xs_b[b]) {
      add(ys_a[order_a[ia]]);
      ++ia;
      ++inserted;
    }
    total += inserted - count_below(ys_b[b]);
  }
  return total;
}

// Ordered pairs with exactly equal coordinates (dominating in neither
// direction, but counted by the >= sweep above).
uint64_t CountEqualPairs2D(const double* xs1, const double* ys1, size_t n1,
                           const size_t* order1, const double* xs2,
                           const double* ys2, size_t n2,
                           const size_t* order2) {
  // Both orders are (x desc, y desc); equal points are contiguous runs.
  uint64_t total = 0;
  size_t i = 0;
  size_t j = 0;
  auto less = [](double ax, double ay, double bx, double by) {
    if (ax != bx) return ax > bx;  // descending x
    return ay > by;                // descending y
  };
  while (i < n1 && j < n2) {
    const size_t a = order1[i];
    const size_t b = order2[j];
    if (xs1[a] == xs2[b] && ys1[a] == ys2[b]) {
      size_t ri = i;
      while (ri < n1 && xs1[order1[ri]] == xs1[a] &&
             ys1[order1[ri]] == ys1[a]) {
        ++ri;
      }
      size_t rj = j;
      while (rj < n2 && xs2[order2[rj]] == xs2[b] &&
             ys2[order2[rj]] == ys2[b]) {
        ++rj;
      }
      total += static_cast<uint64_t>(ri - i) * (rj - j);
      i = ri;
      j = rj;
    } else if (less(xs1[a], ys1[a], xs2[b], ys2[b])) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

KernelCounts CountPairsSweep2D(const double* rows1, size_t n1,
                               const double* rows2, size_t n2,
                               Sweep2DScratch* scratch) {
  KernelCounts c;
  if (n1 == 0 || n2 == 0) return c;

  scratch->xs1.resize(n1);
  scratch->ys1.resize(n1);
  for (size_t i = 0; i < n1; ++i) {
    scratch->xs1[i] = rows1[i * 2];
    scratch->ys1[i] = rows1[i * 2 + 1];
  }
  scratch->xs2.resize(n2);
  scratch->ys2.resize(n2);
  for (size_t j = 0; j < n2; ++j) {
    scratch->xs2[j] = rows2[j * 2];
    scratch->ys2[j] = rows2[j * 2 + 1];
  }

  auto make_order = [](const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       std::vector<size_t>* order) {
    order->resize(xs.size());
    std::iota(order->begin(), order->end(), size_t{0});
    std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
      if (xs[a] != xs[b]) return xs[a] > xs[b];
      if (ys[a] != ys[b]) return ys[a] > ys[b];
      return a < b;
    });
  };
  make_order(scratch->xs1, scratch->ys1, &scratch->order1);
  make_order(scratch->xs2, scratch->ys2, &scratch->order2);

  const uint64_t equal = CountEqualPairs2D(
      scratch->xs1.data(), scratch->ys1.data(), n1, scratch->order1.data(),
      scratch->xs2.data(), scratch->ys2.data(), n2, scratch->order2.data());
  const uint64_t ge12 = CountGe2D(
      scratch->xs1.data(), scratch->ys1.data(), n1, scratch->order1.data(),
      scratch->xs2.data(), scratch->ys2.data(), n2, scratch->order2.data(),
      scratch);
  const uint64_t ge21 = CountGe2D(
      scratch->xs2.data(), scratch->ys2.data(), n2, scratch->order2.data(),
      scratch->xs1.data(), scratch->ys1.data(), n1, scratch->order1.data(),
      scratch);
  c.n12 = ge12 - equal;
  c.n21 = ge21 - equal;
  return c;
}

}  // namespace kernel
}  // namespace galaxy::core
