#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace galaxy::core {

/// A process-wide persistent worker pool. Spawning std::thread per
/// aggregate-skyline call costs more than classifying a small dataset;
/// the pool pays thread creation once per process and reuses the workers
/// for every subsequent parallel region.
///
/// The unit of work is a *slot*: Run(parallelism, body) executes
/// body(slot) exactly once for every slot in [0, parallelism). The caller
/// participates — it claims slots like any worker — so Run() makes
/// progress even with zero pool threads (single-core machines) and never
/// deadlocks waiting for a busy pool. Concurrent Run() calls from
/// different threads interleave on the shared workers; each call returns
/// only when all of its own slots finished.
class ThreadPool {
 public:
  /// The shared pool, sized hardware_concurrency() - 1 (the caller thread
  /// supplies the remaining unit of parallelism). Created on first use;
  /// lives for the process lifetime.
  static ThreadPool& Global();

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs body(slot) exactly once for every slot in [0, parallelism),
  /// blocking until the last slot finished. Safe to call from multiple
  /// threads concurrently; NOT reentrant from inside a body (a body that
  /// calls Run() on the same pool may deadlock).
  void Run(size_t parallelism, const std::function<void(size_t)>& body)
      EXCLUDES(mutex_);

 private:
  /// Bookkeeping of one Run() call, owned by the caller's stack frame.
  /// The fields are guarded by the owning pool's mutex_ (GUARDED_BY
  /// cannot name another object's member, so the invariant is enforced
  /// by RunOneSlot/Run both REQUIRES(mutex_) around every access).
  struct Job {
    const std::function<void(size_t)>* body;
    size_t parallelism;
    size_t next_slot = 0;   // next unclaimed slot
    size_t completed = 0;   // finished slots
    common::CondVar done_cv;
  };

  void WorkerLoop() EXCLUDES(mutex_);
  // Claims and runs one slot of the front claimable job. The mutex is held
  // on entry and on exit, released while the body runs. Returns false when
  // no job has unclaimed slots.
  bool RunOneSlot() REQUIRES(mutex_);

  common::Mutex mutex_;
  common::CondVar work_cv_;
  // Jobs with unclaimed slots (owned by callers).
  std::deque<Job*> jobs_ GUARDED_BY(mutex_);
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

/// Chunked dynamic partition of the index range [0, total) across
/// `parallelism` slots: each slot starts with one contiguous share and,
/// when its own share runs dry, steals the back half of another slot's
/// remainder. Claiming is mutex-per-slot; with chunked claims the lock is
/// touched once per `chunk` indices, so contention stays negligible while
/// load imbalance is bounded by one chunk per slot.
class WorkStealingPartition {
 public:
  /// Variable-size claims: given the contiguous run [begin, limit) still
  /// owned by a slot, returns the end of the next claim in (begin, limit].
  /// Invoked under the slot's claim mutex, so it must be cheap and must
  /// not touch the partition. Lets callers size chunks by estimated cost
  /// (e.g. group-pair record products) instead of a fixed index count.
  using ChunkSizer = std::function<uint64_t(uint64_t begin, uint64_t limit)>;

  WorkStealingPartition(uint64_t total, size_t parallelism, uint64_t chunk);

  /// Claims the next chunk for `slot`. Returns true with [*begin, *end)
  /// a non-empty range of still-unclaimed indices, or false when the whole
  /// partition is exhausted (from this slot's point of view). Each index in
  /// [0, total) is returned exactly once across all slots. Once the
  /// partition is drained this returns false without touching any claim
  /// mutex, so slots beyond the work supply (total < parallelism * chunk)
  /// exit immediately instead of contending on the locks.
  bool Next(size_t slot, uint64_t* begin, uint64_t* end) {
    return Next(slot, begin, end, nullptr);
  }

  /// As above, but when `sizer` is non-null each claim's extent is
  /// (*sizer)(begin, limit) — clamped into (begin, limit] — instead of the
  /// fixed `chunk` index count.
  bool Next(size_t slot, uint64_t* begin, uint64_t* end,
            const ChunkSizer* sizer);

  /// Number of successful steals (one stolen range each).
  uint64_t chunks_stolen() const {
    return stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct Range {
    common::Mutex m;
    uint64_t begin GUARDED_BY(m) = 0;
    uint64_t end GUARDED_BY(m) = 0;
  };

  size_t parallelism_;
  uint64_t chunk_;
  std::unique_ptr<Range[]> ranges_;
  std::atomic<uint64_t> stolen_{0};
  /// Unclaimed indices across all slots; a lock-free exhaustion gate.
  /// Strictly decreasing, decremented by each claim's size while the
  /// corresponding range mutex is held, so 0 is only observable after the
  /// final claim completed — a false "still work" read merely costs one
  /// locked scan, never a missed index.
  std::atomic<uint64_t> remaining_{0};
};

/// An unordered group pair (i < j) in the triangular pair space.
struct PairIndex {
  uint32_t i;
  uint32_t j;
};

/// Maps a linear index p in [0, n*(n-1)/2) to the p-th pair of the
/// row-major triangle (0,1), (0,2), ..., (0,n-1), (1,2), ... — the
/// inverse of the enumeration order of the nested pair loops.
PairIndex PairFromIndex(uint64_t p, uint32_t num_groups);

}  // namespace galaxy::core
