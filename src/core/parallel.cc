#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

#include "common/mutex.h"
#include "common/timer.h"
#include "core/gamma.h"
#include "core/thread_pool.h"
#include "skyline/dominance.h"

namespace galaxy::core {

namespace {

// Resolved defaults of the cost-model knobs (ParallelOptions doc).
constexpr uint64_t kDefaultChunkCostTarget = 1ull << 16;
constexpr uint64_t kDefaultSequentialCutoff = 1ull << 21;
constexpr uint64_t kDefaultGiantPairMinCost = 1ull << 20;
// At most this many pairs are intra-pair split per run: the split exists
// to stop the few largest pairs from serializing the tail, and a bounded
// list keeps the per-worker "visit every giant" sweep cheap. Pairs beyond
// the cap go through the regular per-pair path (correctness unaffected).
constexpr size_t kGiantEnumLimit = 4096;

// Estimated classification cost of the triangle's pairs: the record-pair
// product of the two groups, floored at one per pair (empty groups still
// cost a call). Prefix sums price whole triangle rows in O(1), so sizing
// one adaptive chunk costs O(rows touched + pairs of the final row).
struct PairCostModel {
  uint32_t n = 0;
  std::vector<uint64_t> sizes;
  std::vector<uint64_t> prefix;  // prefix[k] = sizes[0] + ... + sizes[k-1]

  explicit PairCostModel(const GroupedDataset& dataset)
      : n(static_cast<uint32_t>(dataset.num_groups())),
        sizes(n),
        prefix(static_cast<size_t>(n) + 1, 0) {
    for (uint32_t g = 0; g < n; ++g) {
      sizes[g] = dataset.group(g).size();
      prefix[g + 1] = prefix[g] + sizes[g];
    }
  }

  // Linear index of the first pair of triangle row r ((r, r+1)).
  uint64_t RowOffset(uint64_t r) const { return r * n - r * (r + 1) / 2; }

  uint64_t PairCost(uint32_t i, uint32_t j) const {
    return std::max<uint64_t>(1, sizes[i] * sizes[j]);
  }

  // Total estimated cost of the whole triangle: the cross products
  // (T^2 - sum of squares) / 2, floored at the pair count.
  uint64_t TotalCost(uint64_t total_pairs) const {
    const uint64_t t = prefix[n];
    uint64_t sumsq = 0;
    for (uint32_t g = 0; g < n; ++g) sumsq += sizes[g] * sizes[g];
    return std::max(total_pairs, (t * t - sumsq) / 2);
  }

  // End of a claim starting at `begin` carrying roughly `target` cost,
  // clamped to (begin, limit]. Whole row segments are priced via the
  // prefix sums; only the final partial row walks individual pairs.
  uint64_t ChunkEnd(uint64_t begin, uint64_t limit, uint64_t target) const {
    uint64_t p = begin;
    uint64_t acc = 0;
    PairIndex start = PairFromIndex(begin, n);
    uint64_t r = start.i;
    uint64_t j = start.j;
    while (p < limit && acc < target) {
      const uint64_t seg_end = std::min<uint64_t>(limit, RowOffset(r + 1));
      const uint64_t seg_count = seg_end - p;
      const uint64_t seg_cost = std::max(
          seg_count, sizes[r] * (prefix[j + seg_count] - prefix[j]));
      if (acc + seg_cost <= target) {
        acc += seg_cost;
        p = seg_end;
        ++r;
        j = r + 1;
        continue;
      }
      // The partial-row walk prices at most one row of the pair grid; the
      // chunk planner runs between budgeted scan chunks and charging the
      // planner would bill planning against the work it is slicing.
      // galaxy-analyze: allow(budget-reach)
      while (p < seg_end && acc < target) {
        acc += std::max<uint64_t>(1, sizes[r] * sizes[j]);
        ++p;
        ++j;
      }
      break;
    }
    return std::max(p, begin + 1);
  }
};

// One giant pair's cooperative tile scan. The first worker to arrive
// prepares the residual under the pair mutex (settled-skip, control-plane
// poll, MBB shortcut / preclassification, tile grid); afterwards every
// worker claims tiles, counts them lock-free with the cache-blocked
// kernel, and folds its counts back under the mutex. Whichever fold makes
// the outcome decidable applies the marks — the stop rule's
// TryResolveOutcome is sound on any resolved-subset state, so the tile
// interleaving cannot change the outcome, only where the scan stops.
struct GiantScan {
  uint32_t i = 0;
  uint32_t j = 0;
  uint64_t total = 0;  // |g_i| * |g_j|, constant

  common::Mutex m;
  bool prepared GUARDED_BY(m) = false;
  bool done GUARDED_BY(m) = false;  // outcome applied, skipped, or aborted
  uint64_t next_tile GUARDED_BY(m) = 0;
  uint64_t n12 GUARDED_BY(m) = 0;
  uint64_t n21 GUARDED_BY(m) = 0;
  uint64_t resolved GUARDED_BY(m) = 0;

  // Written once during preparation while holding `m`, read without it by
  // the tile loop: every reader first observed prepared == true under the
  // mutex, so the release/acquire hand-off publishes these fields.
  const double* rows1 = nullptr;
  const double* rows2 = nullptr;
  size_t k1 = 0;
  size_t k2 = 0;
  size_t tile_rows = 0;
  size_t tile_cols = 0;
  uint64_t tile_grid_cols = 0;
  uint64_t total_tiles = 0;
  std::vector<double> buf1, buf2;  // backing storage for gathered residuals
};

}  // namespace

AggregateSkylineResult ComputeAggregateSkylineParallel(
    const GroupedDataset& dataset, const ParallelOptions& options) {
  WallTimer timer;
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  size_t threads = options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<size_t>(threads, std::max<uint32_t>(1, n));
  const uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  // Never hold more slots than pairs: surplus slots would only contend on
  // the claim path before exiting empty-handed.
  threads = std::min<size_t>(threads, std::max<uint64_t>(1, total_pairs));

  const uint64_t chunk_cost_target = options.chunk_cost_target != 0
                                         ? options.chunk_cost_target
                                         : kDefaultChunkCostTarget;
  const uint64_t sequential_cutoff = options.sequential_cutoff_cost != 0
                                         ? options.sequential_cutoff_cost
                                         : kDefaultSequentialCutoff;
  const uint64_t giant_min_cost = options.giant_pair_min_cost != 0
                                      ? options.giant_pair_min_cost
                                      : kDefaultGiantPairMinCost;

  GammaThresholds thresholds = GammaThresholds::FromGamma(options.gamma);
  PairCompareOptions pair_options;
  pair_options.use_stop_rule = options.use_stop_rule;
  pair_options.use_mbb = options.use_mbb;
  pair_options.exec = options.exec;
  pair_options.kernel = options.kernel;
  ExecutionContext* exec = options.exec;

  // Shared dominance marks. Writes are monotone (0 -> 1 only), so relaxed
  // atomics are sufficient: a stale read can only cause extra work, never
  // a wrong mark.
  auto dominated = std::make_unique<std::atomic<uint8_t>[]>(n);
  auto strongly = std::make_unique<std::atomic<uint8_t>[]>(n);
  for (uint32_t i = 0; i < n; ++i) {
    dominated[i].store(0, std::memory_order_relaxed);
    strongly[i].store(0, std::memory_order_relaxed);
  }

  struct LocalStats {
    uint64_t pairs = 0;
    uint64_t record_comparisons = 0;
    uint64_t mbb_shortcuts = 0;
    uint64_t stopped_early = 0;
    uint64_t skipped_settled = 0;
    uint64_t records_preclassified = 0;
    uint64_t pairs_split = 0;
  };
  std::vector<LocalStats> local(threads);

  auto apply_outcome = [&](uint32_t i, uint32_t j, PairOutcome outcome) {
    switch (outcome) {
      case PairOutcome::kFirstDominatesStrongly:
        strongly[j].store(1, std::memory_order_relaxed);
        dominated[j].store(1, std::memory_order_relaxed);
        break;
      case PairOutcome::kFirstDominates:
        dominated[j].store(1, std::memory_order_relaxed);
        break;
      case PairOutcome::kSecondDominatesStrongly:
        strongly[i].store(1, std::memory_order_relaxed);
        dominated[i].store(1, std::memory_order_relaxed);
        break;
      case PairOutcome::kSecondDominates:
        dominated[i].store(1, std::memory_order_relaxed);
        break;
      case PairOutcome::kIncomparable:
        break;
    }
  };

  // One regular (non-split) pair. Returns false when the control plane
  // stopped the run mid-classification.
  auto process_pair = [&](uint32_t i, uint32_t j, LocalStats& stats) {
    // A pair may only be skipped when classifying it could not change any
    // mark. Both endpoints being `dominated` is not enough: the
    // classification could still set a missing `strongly_dominated` mark,
    // making the parallel strong vector disagree with the sequential
    // algorithms. A strongly-dominated endpoint has both its marks set, so
    // requiring strong marks on both sides keeps every output vector
    // exact.
    if (options.skip_settled_pairs &&
        strongly[i].load(std::memory_order_relaxed) != 0 &&
        strongly[j].load(std::memory_order_relaxed) != 0) {
      ++stats.skipped_settled;
      return true;
    }
    PairCompareStats pair_stats;
    PairOutcome outcome =
        ClassifyPair(dataset.group(i), dataset.group(j), thresholds,
                     pair_options, &pair_stats);
    stats.record_comparisons += pair_stats.record_comparisons;
    stats.records_preclassified += pair_stats.records_preclassified;
    if (pair_stats.mbb_strict_shortcut) ++stats.mbb_shortcuts;
    if (pair_stats.stopped_early) ++stats.stopped_early;
    // An aborted classification decided nothing; recording its outcome
    // would be a false mark, and counting it would inflate
    // group_pairs_classified past the decided pairs.
    if (pair_stats.aborted) return false;
    ++stats.pairs;
    apply_outcome(i, j, outcome);
    return true;
  };

  AggregateSkylineResult result;
  result.algorithm_used = Algorithm::kParallel;

  PairCostModel cost_model(dataset);
  const uint64_t total_cost = cost_model.TotalCost(total_pairs);

  if (threads <= 1 || total_pairs == 0 || total_cost < sequential_cutoff) {
    // Below the cutoff the pool wakeup costs more than the classification
    // work; run inline on the calling thread.
    LocalStats& stats = local[0];
    [&] {
      for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t j = i + 1; j < n; ++j) {
          if (exec != nullptr && exec->stopped()) return;
          if (!process_pair(i, j, stats)) return;
        }
      }
    }();
  } else {
    // Giant pairs — cost at or above the split threshold — are scanned
    // cooperatively, largest first, before the triangle sweep. Enumerate
    // them by pairing the size-sorted groups (the inner loop breaks at the
    // first partner below the threshold) and keep the most expensive ones.
    std::deque<GiantScan> giants;
    std::vector<uint64_t> giant_linear;  // ascending; the phase-2 skip set
    {
      std::vector<uint32_t> by_size(n);
      std::iota(by_size.begin(), by_size.end(), uint32_t{0});
      std::sort(by_size.begin(), by_size.end(),
                [&](uint32_t a, uint32_t b) {
                  if (cost_model.sizes[a] != cost_model.sizes[b]) {
                    return cost_model.sizes[a] > cost_model.sizes[b];
                  }
                  return a < b;
                });
      std::vector<std::tuple<uint64_t, uint32_t, uint32_t>> cand;
      for (size_t a = 0; a + 1 < by_size.size(); ++a) {
        bool any = false;
        for (size_t b = a + 1;
             b < by_size.size() && cand.size() < kGiantEnumLimit; ++b) {
          const uint64_t cost =
              cost_model.sizes[by_size[a]] * cost_model.sizes[by_size[b]];
          if (cost < giant_min_cost) break;
          any = true;
          const uint32_t gi = std::min(by_size[a], by_size[b]);
          const uint32_t gj = std::max(by_size[a], by_size[b]);
          cand.emplace_back(cost, gi, gj);
        }
        if (!any || cand.size() >= kGiantEnumLimit) break;
      }
      const size_t giant_cap = std::max<size_t>(32, 8 * threads);
      std::sort(cand.begin(), cand.end(), [](const auto& x, const auto& y) {
        if (std::get<0>(x) != std::get<0>(y)) {
          return std::get<0>(x) > std::get<0>(y);
        }
        return std::tie(std::get<1>(x), std::get<2>(x)) <
               std::tie(std::get<1>(y), std::get<2>(y));
      });
      if (cand.size() > giant_cap) cand.resize(giant_cap);
      for (const auto& [cost, gi, gj] : cand) {
        GiantScan& g = giants.emplace_back();
        g.i = gi;
        g.j = gj;
        g.total = cost;
        giant_linear.push_back(cost_model.RowOffset(gi) + (gj - gi - 1));
      }
      std::sort(giant_linear.begin(), giant_linear.end());
    }

    auto is_giant = [&](uint64_t p) {
      return std::binary_search(giant_linear.begin(), giant_linear.end(), p);
    };

    // Decides a giant under its mutex: applies the marks and the stats of
    // the deciding worker.
    auto decide_giant = [&](GiantScan& g, PairOutcome outcome,
                            LocalStats& stats) REQUIRES(g.m) {
      g.done = true;
      apply_outcome(g.i, g.j, outcome);
      ++stats.pairs;
      if (g.resolved < g.total) ++stats.stopped_early;
    };

    // First worker on a giant: settle/poll/MBB under the pair mutex, then
    // lay out the tile grid. Returns with g.done or g.prepared set.
    auto prepare_giant = [&](GiantScan& g, LocalStats& stats) REQUIRES(g.m) {
      const Group& g1 = dataset.group(g.i);
      const Group& g2 = dataset.group(g.j);
      if (options.skip_settled_pairs &&
          strongly[g.i].load(std::memory_order_relaxed) != 0 &&
          strongly[g.j].load(std::memory_order_relaxed) != 0) {
        ++stats.skipped_settled;
        g.done = true;
        return;
      }
      if (exec != nullptr && !exec->Charge(0)) {
        g.done = true;
        return;
      }
      if (options.use_mbb) {
        const Box& b1 = g1.mbb();
        const Box& b2 = g2.mbb();
        // Figure 9(b) corner-only decisions, as in ClassifyPair.
        if (skyline::Dominates(b2.min, b1.max)) {
          ++stats.mbb_shortcuts;
          decide_giant(g, PairOutcome::kSecondDominatesStrongly, stats);
          return;
        }
        if (skyline::Dominates(b1.min, b2.max)) {
          ++stats.mbb_shortcuts;
          decide_giant(g, PairOutcome::kFirstDominatesStrongly, stats);
          return;
        }
        internal::MbbPreclassification pre =
            internal::PreclassifyWithMbb(g1, g2);
        g.n12 = pre.n12;
        g.n21 = pre.n21;
        g.resolved = pre.resolved;
        const uint64_t corner_tests = 2 * (g1.size() + g2.size());
        stats.record_comparisons += corner_tests;
        stats.records_preclassified +=
            (g1.size() - pre.rest1.size()) + (g2.size() - pre.rest2.size());
        if (exec != nullptr && !exec->Charge(corner_tests)) {
          g.done = true;
          return;
        }
        const size_t dims = dataset.dims();
        kernel::GatherRows(g1.data().data(), pre.rest1.data(),
                           pre.rest1.size(), dims, &g.buf1);
        kernel::GatherRows(g2.data().data(), pre.rest2.data(),
                           pre.rest2.size(), dims, &g.buf2);
        g.rows1 = g.buf1.data();
        g.rows2 = g.buf2.data();
        g.k1 = pre.rest1.size();
        g.k2 = pre.rest2.size();
      } else {
        g.rows1 = g1.data().data();
        g.rows2 = g2.data().data();
        g.k1 = g1.size();
        g.k2 = g2.size();
      }
      PairOutcome outcome;
      // With an empty residual resolved == total, where TryResolveOutcome
      // always decides (and matches the exhaustive predicates), so reaching
      // the tile grid implies at least one tile.
      if ((options.use_stop_rule || g.resolved == g.total) &&
          internal::TryResolveOutcome(g.n12, g.n21, g.resolved, g.total,
                                      thresholds, &outcome)) {
        decide_giant(g, outcome, stats);
        return;
      }
      g.tile_rows = exec != nullptr ? kernel::kBoundedTileEdge
                                    : kernel::kTileRows;
      g.tile_cols = exec != nullptr ? kernel::kBoundedTileEdge
                                    : kernel::kTileCols;
      g.tile_grid_cols = (g.k2 + g.tile_cols - 1) / g.tile_cols;
      g.total_tiles =
          static_cast<uint64_t>((g.k1 + g.tile_rows - 1) / g.tile_rows) *
          g.tile_grid_cols;
      g.prepared = true;
      ++stats.pairs_split;
    };

    // Cooperates on one giant until it is decided or out of tiles.
    // Returns false when the control plane stopped the run.
    auto process_giant = [&](GiantScan& g, LocalStats& stats) {
      {
        common::MutexLock lock(&g.m);
        if (g.done) return true;
        if (!g.prepared) {
          prepare_giant(g, stats);
          if (g.done) return exec == nullptr || !exec->stopped();
        }
      }
      const size_t dims = dataset.dims();
      while (true) {
        if (exec != nullptr && exec->stopped()) {
          common::MutexLock lock(&g.m);
          g.done = true;
          return false;
        }
        uint64_t tile;
        {
          common::MutexLock lock(&g.m);
          if (g.done || g.next_tile >= g.total_tiles) return true;
          tile = g.next_tile++;
        }
        const size_t i0 =
            static_cast<size_t>(tile / g.tile_grid_cols) * g.tile_rows;
        const size_t j0 =
            static_cast<size_t>(tile % g.tile_grid_cols) * g.tile_cols;
        const size_t ni = std::min(g.tile_rows, g.k1 - i0);
        const size_t nj = std::min(g.tile_cols, g.k2 - j0);
        kernel::KernelCounts c = kernel::CountBlock(
            g.rows1 + i0 * dims, ni, g.rows2 + j0 * dims, nj, dims);
        const uint64_t pairs = static_cast<uint64_t>(ni) * nj;
        stats.record_comparisons += pairs;
        // One tile is at most one charge batch (kBoundedTileEdge^2 when a
        // context is attached), so each worker unwinds within the
        // documented latency once the context stops.
        const bool charge_ok = exec == nullptr || exec->Charge(pairs);
        common::MutexLock lock(&g.m);
        if (!charge_ok) {
          // The pair stays undecided: recording partial counts as an
          // outcome (or counting the pair) would fabricate knowledge.
          g.done = true;
          return false;
        }
        if (g.done) continue;  // decided while this tile was in flight
        g.n12 += c.n12;
        g.n21 += c.n21;
        g.resolved += pairs;
        PairOutcome outcome;
        if ((options.use_stop_rule || g.resolved == g.total) &&
            internal::TryResolveOutcome(g.n12, g.n21, g.resolved, g.total,
                                        thresholds, &outcome)) {
          decide_giant(g, outcome, stats);
          return true;
        }
      }
    };

    const bool adaptive_chunk = options.pair_chunk == 0;
    const uint64_t fixed_chunk = adaptive_chunk ? 1 : options.pair_chunk;
    WorkStealingPartition partition(total_pairs, threads, fixed_chunk);
    const WorkStealingPartition::ChunkSizer sizer =
        [&](uint64_t begin, uint64_t limit) {
          return cost_model.ChunkEnd(begin, limit, chunk_cost_target);
        };
    const WorkStealingPartition::ChunkSizer* sizer_ptr =
        adaptive_chunk ? &sizer : nullptr;

    auto worker = [&](size_t slot) {
      LocalStats& stats = local[slot];
      // Phase 1: gang up on the giant pairs, most expensive first, so the
      // costliest scans finish with full parallelism instead of pinning
      // one worker while the others drain the cheap tail.
      for (GiantScan& g : giants) {
        if (!process_giant(g, stats)) return;
      }
      // Phase 2: the remaining triangle under cost-adaptive work stealing.
      uint64_t begin = 0;
      uint64_t end = 0;
      while (partition.Next(slot, &begin, &end, sizer_ptr)) {
        if (exec != nullptr && exec->stopped()) return;
        for (uint64_t p = begin; p < end; ++p) {
          if (exec != nullptr && exec->stopped()) return;
          if (is_giant(p)) continue;  // classified in phase 1
          const PairIndex pair = PairFromIndex(p, n);
          if (!process_pair(pair.i, pair.j, stats)) return;
        }
      }
    };

    ThreadPool::Global().Run(threads, worker);
    result.stats.chunks_stolen = partition.chunks_stolen();
  }

  result.dominated.resize(n);
  result.strongly_dominated.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    result.dominated[i] = dominated[i].load(std::memory_order_relaxed);
    result.strongly_dominated[i] = strongly[i].load(std::memory_order_relaxed);
    if (result.dominated[i] == 0) result.skyline.push_back(i);
  }
  for (const LocalStats& stats : local) {
    result.stats.group_pairs_classified += stats.pairs;
    result.stats.record_comparisons += stats.record_comparisons;
    result.stats.mbb_shortcuts += stats.mbb_shortcuts;
    result.stats.stopped_early += stats.stopped_early;
    result.stats.pairs_skipped_strong += stats.skipped_settled;
    result.stats.records_preclassified += stats.records_preclassified;
    result.stats.pairs_split += stats.pairs_split;
  }
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace galaxy::core
