#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "core/gamma.h"
#include "core/thread_pool.h"

namespace galaxy::core {

namespace {
// Default group pairs per work-stealing claim. Pair costs vary by orders
// of magnitude (group sizes are skewed), so the chunk stays small; the
// per-claim mutex is uncontended at this granularity.
constexpr uint64_t kDefaultPairChunk = 8;
}  // namespace

AggregateSkylineResult ComputeAggregateSkylineParallel(
    const GroupedDataset& dataset, const ParallelOptions& options) {
  WallTimer timer;
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  size_t threads = options.num_threads != 0
                       ? options.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<size_t>(threads, std::max<uint32_t>(1, n));

  GammaThresholds thresholds = GammaThresholds::FromGamma(options.gamma);
  PairCompareOptions pair_options;
  pair_options.use_stop_rule = options.use_stop_rule;
  pair_options.use_mbb = options.use_mbb;
  pair_options.exec = options.exec;
  pair_options.kernel = options.kernel;

  // Shared dominance marks. Writes are monotone (0 -> 1 only), so relaxed
  // atomics are sufficient: a stale read can only cause extra work, never
  // a wrong mark.
  auto dominated = std::make_unique<std::atomic<uint8_t>[]>(n);
  auto strongly = std::make_unique<std::atomic<uint8_t>[]>(n);
  for (uint32_t i = 0; i < n; ++i) {
    dominated[i].store(0, std::memory_order_relaxed);
    strongly[i].store(0, std::memory_order_relaxed);
  }

  struct LocalStats {
    uint64_t pairs = 0;
    uint64_t record_comparisons = 0;
    uint64_t mbb_shortcuts = 0;
    uint64_t stopped_early = 0;
    uint64_t skipped_settled = 0;
    uint64_t records_preclassified = 0;
  };
  std::vector<LocalStats> local(threads);

  const uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  const uint64_t chunk =
      options.pair_chunk != 0 ? options.pair_chunk : kDefaultPairChunk;
  WorkStealingPartition partition(total_pairs, threads, chunk);

  auto worker = [&](size_t slot) {
    LocalStats& stats = local[slot];
    uint64_t begin = 0;
    uint64_t end = 0;
    while (partition.Next(slot, &begin, &end)) {
      if (options.exec != nullptr && options.exec->stopped()) return;
      for (uint64_t p = begin; p < end; ++p) {
        if (options.exec != nullptr && options.exec->stopped()) return;
        const PairIndex pair = PairFromIndex(p, n);
        const uint32_t i = pair.i;
        const uint32_t j = pair.j;
        // A pair may only be skipped when classifying it could not change
        // any mark. Both endpoints being `dominated` is not enough: the
        // classification could still set a missing `strongly_dominated`
        // mark, making the parallel strong vector disagree with the
        // sequential algorithms. A strongly-dominated endpoint has both its
        // marks set, so requiring strong marks on both sides keeps every
        // output vector exact.
        if (options.skip_settled_pairs &&
            strongly[i].load(std::memory_order_relaxed) != 0 &&
            strongly[j].load(std::memory_order_relaxed) != 0) {
          ++stats.skipped_settled;
          continue;
        }
        PairCompareStats pair_stats;
        PairOutcome outcome =
            ClassifyPair(dataset.group(i), dataset.group(j), thresholds,
                         pair_options, &pair_stats);
        ++stats.pairs;
        stats.record_comparisons += pair_stats.record_comparisons;
        stats.records_preclassified += pair_stats.records_preclassified;
        if (pair_stats.mbb_strict_shortcut) ++stats.mbb_shortcuts;
        if (pair_stats.stopped_early) ++stats.stopped_early;
        // An aborted classification decided nothing; recording its outcome
        // would be a false mark.
        if (pair_stats.aborted) continue;
        switch (outcome) {
          case PairOutcome::kFirstDominatesStrongly:
            strongly[j].store(1, std::memory_order_relaxed);
            dominated[j].store(1, std::memory_order_relaxed);
            break;
          case PairOutcome::kFirstDominates:
            dominated[j].store(1, std::memory_order_relaxed);
            break;
          case PairOutcome::kSecondDominatesStrongly:
            strongly[i].store(1, std::memory_order_relaxed);
            dominated[i].store(1, std::memory_order_relaxed);
            break;
          case PairOutcome::kSecondDominates:
            dominated[i].store(1, std::memory_order_relaxed);
            break;
          case PairOutcome::kIncomparable:
            break;
        }
      }
    }
  };

  ThreadPool::Global().Run(threads, worker);

  AggregateSkylineResult result;
  result.algorithm_used = Algorithm::kParallel;
  result.dominated.resize(n);
  result.strongly_dominated.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    result.dominated[i] = dominated[i].load(std::memory_order_relaxed);
    result.strongly_dominated[i] = strongly[i].load(std::memory_order_relaxed);
    if (result.dominated[i] == 0) result.skyline.push_back(i);
  }
  for (const LocalStats& stats : local) {
    result.stats.group_pairs_classified += stats.pairs;
    result.stats.record_comparisons += stats.record_comparisons;
    result.stats.mbb_shortcuts += stats.mbb_shortcuts;
    result.stats.stopped_early += stats.stopped_early;
    result.stats.pairs_skipped_strong += stats.skipped_settled;
    result.stats.records_preclassified += stats.records_preclassified;
  }
  result.stats.chunks_stolen = partition.chunks_stolen();
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace galaxy::core
