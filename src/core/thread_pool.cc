#include "core/thread_pool.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace galaxy::core {

using common::MutexLock;

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::RunOneSlot() {
  for (Job* job : jobs_) {
    if (job->next_slot >= job->parallelism) continue;
    const size_t slot = job->next_slot++;
    mutex_.Unlock();
    (*job->body)(slot);
    mutex_.Lock();
    if (++job->completed == job->parallelism) job->done_cv.NotifyAll();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  MutexLock lock(&mutex_);
  while (true) {
    if (RunOneSlot()) continue;
    if (shutdown_) return;
    work_cv_.Wait(&mutex_);
  }
}

void ThreadPool::Run(size_t parallelism,
                     const std::function<void(size_t)>& body) {
  if (parallelism == 0) return;
  if (parallelism == 1) {
    body(0);
    return;
  }
  Job job;
  job.body = &body;
  job.parallelism = parallelism;
  MutexLock lock(&mutex_);
  jobs_.push_back(&job);
  work_cv_.NotifyAll();
  // The caller claims slots too (of any queued job — helping a concurrent
  // caller's job is fine and avoids idling while our own slots are all
  // taken but unfinished).
  while (job.completed < job.parallelism) {
    if (!RunOneSlot()) {
      job.done_cv.Wait(&mutex_);
    }
  }
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
}

WorkStealingPartition::WorkStealingPartition(uint64_t total,
                                             size_t parallelism,
                                             uint64_t chunk)
    : parallelism_(parallelism),
      chunk_(std::max<uint64_t>(1, chunk)),
      ranges_(std::make_unique<Range[]>(std::max<size_t>(1, parallelism))),
      remaining_(total) {
  GALAXY_CHECK_GT(parallelism, 0u);
  // Initial even split; remainders go to the leading slots. The locks are
  // uncontended (no other thread sees the partition yet) but keep the
  // guarded writes visible to the thread-safety analysis.
  const uint64_t base = total / parallelism;
  const uint64_t extra = total % parallelism;
  uint64_t begin = 0;
  for (size_t s = 0; s < parallelism; ++s) {
    const uint64_t len = base + (s < extra ? 1 : 0);
    MutexLock lock(&ranges_[s].m);
    ranges_[s].begin = begin;
    ranges_[s].end = begin + len;
    begin += len;
  }
}

bool WorkStealingPartition::Next(size_t slot, uint64_t* begin, uint64_t* end,
                                 const ChunkSizer* sizer) {
  // Lock-free exhaustion gate: once every index has been claimed, slots
  // return immediately without scanning (and locking) the ranges. This is
  // what keeps degenerate shapes — more slots than work — from piling up
  // on the claim mutexes.
  if (remaining_.load(std::memory_order_acquire) == 0) return false;
  const auto claim_end = [&](uint64_t claim_begin, uint64_t limit) {
    uint64_t e = sizer != nullptr ? (*sizer)(claim_begin, limit)
                                  : claim_begin + chunk_;
    if (e <= claim_begin) e = claim_begin + 1;
    return std::min(e, limit);
  };
  Range& own = ranges_[slot];
  {
    MutexLock lock(&own.m);
    if (own.begin < own.end) {
      *begin = own.begin;
      *end = claim_end(own.begin, own.end);
      own.begin = *end;
      remaining_.fetch_sub(*end - *begin, std::memory_order_release);
      return true;
    }
  }
  // Own share exhausted: steal the back half of a victim's remainder, so
  // the victim keeps its cache-warm front and the thief gets a share that
  // still amortizes further steals.
  for (size_t off = 1; off < parallelism_; ++off) {
    if (remaining_.load(std::memory_order_acquire) == 0) return false;
    Range& victim = ranges_[(slot + off) % parallelism_];
    uint64_t steal_begin = 0;
    uint64_t steal_end = 0;
    {
      MutexLock lock(&victim.m);
      if (victim.begin < victim.end) {
        const uint64_t mid =
            victim.begin + (victim.end - victim.begin) / 2;
        steal_begin = mid;
        steal_end = victim.end;
        victim.end = mid;
      }
    }
    if (steal_begin < steal_end) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(&own.m);
      own.begin = steal_begin;
      own.end = steal_end;
      *begin = own.begin;
      *end = claim_end(own.begin, own.end);
      own.begin = *end;
      remaining_.fetch_sub(*end - *begin, std::memory_order_release);
      return true;
    }
  }
  return false;
}

PairIndex PairFromIndex(uint64_t p, uint32_t num_groups) {
  const uint64_t n = num_groups;
  // Row i starts at offset(i) = i*n - i*(i+1)/2. Invert with the sqrt
  // approximation, then correct (the FP estimate is off by at most a few
  // rows near the tail).
  const double nd = static_cast<double>(n) - 0.5;
  double disc = nd * nd - 2.0 * static_cast<double>(p);
  if (disc < 0.0) disc = 0.0;
  uint64_t i = static_cast<uint64_t>(nd - std::sqrt(disc));
  if (i >= n) i = n - 1;
  auto row_offset = [n](uint64_t r) { return r * n - r * (r + 1) / 2; };
  while (i > 0 && row_offset(i) > p) --i;
  while (i + 1 < n && row_offset(i + 1) <= p) ++i;
  const uint64_t j = i + 1 + (p - row_offset(i));
  return PairIndex{static_cast<uint32_t>(i), static_cast<uint32_t>(j)};
}

}  // namespace galaxy::core
