#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace galaxy::core {

/// How complete an aggregate-skyline result is.
enum class ResultQuality {
  /// The result is the exact answer of Definition 2 (modulo the documented
  /// weak-transitivity gap of the pruned algorithms).
  kExact,
  /// The run was interrupted (deadline, cancellation or comparison budget)
  /// and degraded through the anytime operator: the skyline is a *sound
  /// over-approximation* — a superset of the exact aggregate skyline. No
  /// group was wrongly excluded; some dominated groups may remain.
  kApproximateSuperset,
};

const char* ResultQualityToString(ResultQuality quality);

/// The execution control plane of one query run: a wall-clock deadline, a
/// cooperative cancellation token, and resource budgets (record
/// comparisons, resident bytes), shared between the caller and every
/// worker thread of the run.
///
/// Contract:
///  - Configuration (deadlines, budgets, injection points) happens before
///    the run starts and is not thread-safe.
///  - RequestCancel() may be called from any thread at any time.
///  - Workers call Charge(n) as they perform work (record comparisons in
///    the skyline operators, rows in the SQL executor). Once any limit
///    trips, Charge returns false, stopped() flips to true, and status()
///    reports the first trip reason; workers are expected to unwind within
///    one charge batch (ExecutionContext::kChargeBatch work units).
///  - The object must outlive the run it governs. It is single-use: a
///    stopped context stays stopped.
///
/// When no limit is configured the per-batch cost is one relaxed atomic
/// add, and operators that receive a null ExecutionContext* skip even
/// that, so the control plane is free on the unbounded hot path.
class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Work units a worker may perform between two Charge calls; the unwind
  /// latency after a trip is bounded by one batch per worker. This is the
  /// "slice" of the cancellation-latency guarantee.
  static constexpr uint64_t kChargeBatch = 256;
  /// Comparisons between wall-clock polls: the deadline is checked at most
  /// once per this many charged units (across all threads), bounding both
  /// clock overhead and detection latency.
  static constexpr uint64_t kDeadlineCheckInterval = 4096;

  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // ---- Configuration (before the run; not thread-safe). -------------------

  /// Absolute wall-clock deadline.
  void set_deadline(Clock::time_point deadline);
  /// Relative deadline: now + timeout.
  void set_timeout(std::chrono::milliseconds timeout);
  /// Caps the total charged work units (record comparisons).
  void set_max_comparisons(uint64_t max_comparisons);
  /// Caps bytes reserved through ReserveBytes (R-tree, domination matrix).
  void set_max_resident_bytes(uint64_t max_bytes);

  /// Fault injection (testing): behaves exactly like RequestCancel() /
  /// deadline expiry the moment the charged-work counter reaches `n`.
  /// Deterministic, unlike a real timer, so harnesses can assert on the
  /// precise trigger point.
  void InjectCancelAtComparison(uint64_t n) { cancel_at_ = n; }
  void InjectDeadlineAtComparison(uint64_t n) { deadline_at_ = n; }

  // ---- Run-time interface (thread-safe). ----------------------------------

  /// Requests cooperative cancellation; idempotent, callable from any
  /// thread (e.g. a client-disconnect handler).
  void RequestCancel() { Trip(StopReason::kCancelled); }

  /// True once the run must stop (any limit tripped or cancel requested).
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

  /// OK while running; otherwise the first trip reason as a Status
  /// (kCancelled / kDeadlineExceeded / kResourceExhausted).
  Status status() const;

  /// True when the run stopped for a reason that permits graceful
  /// degradation through the anytime operator — cancellation, deadline,
  /// or the comparison budget. A memory-budget trip is never degradable:
  /// the salvage pass could not respect the memory cap either.
  bool degradable_trip() const;

  /// Charges `n` work units and re-evaluates the limits. Returns true when
  /// the run may continue. `n == 0` is a pure poll.
  bool Charge(uint64_t n);

  /// Reserves bytes against the resident-memory budget; on failure the
  /// context trips with kResourceExhausted and the reservation is not
  /// recorded. Pair with ReleaseBytes (or use ScopedReservation).
  Status ReserveBytes(uint64_t bytes);
  void ReleaseBytes(uint64_t bytes);

  // ---- Introspection. -----------------------------------------------------

  uint64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  enum class StopReason : int {
    kNone = 0,
    kCancelled,
    kDeadlineExceeded,
    kComparisonBudget,
    kMemoryBudget,
  };

  /// Records the first stop reason (later trips lose) and latches stopped_.
  void Trip(StopReason reason);

  std::atomic<bool> stopped_{false};
  std::atomic<int> stop_reason_{static_cast<int>(StopReason::kNone)};
  std::atomic<uint64_t> comparisons_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> next_deadline_check_{0};

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  uint64_t max_comparisons_ = kUnlimited;
  uint64_t max_resident_bytes_ = kUnlimited;
  uint64_t cancel_at_ = kUnlimited;    // injection: cancel at this count
  uint64_t deadline_at_ = kUnlimited;  // injection: deadline at this count
};

/// RAII byte reservation against an ExecutionContext (no-op when the
/// context is null).
class ScopedReservation {
 public:
  ScopedReservation() = default;
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  ~ScopedReservation() { Release(); }

  /// Attempts the reservation; on error nothing is held.
  Status Reserve(ExecutionContext* exec, uint64_t bytes);
  void Release();

 private:
  ExecutionContext* exec_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace galaxy::core

