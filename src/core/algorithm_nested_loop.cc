#include "core/algo_context.h"

namespace galaxy::core::internal {

// Reference mode: every unordered pair is classified with every record pair
// inspected (no stopping rule, no MBB pruning, no group skipping). The
// result is the exact aggregate skyline of Definition 2.
void RunBruteForce(AlgoContext& ctx) {
  const uint32_t n = static_cast<uint32_t>(ctx.dataset().num_groups());
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (ctx.interrupted()) return;
      ctx.Compare(i, j);
    }
  }
}

// Algorithm 2 ("NL"): plain nested loop over unordered group pairs. The
// only acceleration is the internal stopping rule inside ClassifyPair.
// Like the brute force it inspects every pair of groups, so it is exact.
void RunNestedLoop(AlgoContext& ctx) {
  const uint32_t n = static_cast<uint32_t>(ctx.dataset().num_groups());
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (ctx.interrupted()) return;
      ctx.Compare(i, j);
    }
  }
}

}  // namespace galaxy::core::internal
