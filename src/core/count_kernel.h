#pragma once

// Allocation- and span-free counting kernels for the pairwise-domination
// hot path (the O(|S|·|R|) residual scan inside ClassifyPair). The kernels
// operate on raw row-major `const double*` buffers whose values are
// already MAX-oriented (MIN attributes negated at group construction), so
// a record r dominates s iff r >= s componentwise and r != s.
//
// Three families, selected by KernelPolicy:
//  - tiled:  branch-free two-way counting over a cache-blocked tile of the
//            rest1 x rest2 residual matrix (dimension-specialized for
//            d = 2..8, generic fallback), preserving the incremental stop
//            rule by deciding at tile boundaries;
//  - sorted: both sides ordered by decreasing MonotoneScore; each outer
//            row splits the inner side into a may-dominate-me prefix and a
//            may-be-dominated suffix (records with a strictly larger score
//            can never be dominated), each scanned with a cheaper one-way
//            predicate, with whole-range bulk counts against the prefix
//            min / suffix max corners;
//  - sweep:  an exact O(n log n) two-dimensional dominance-pair count
//            (sort + Fenwick tree) for d = 2.
//
// This header is dependency-light on purpose (no gamma.h / group.h): the
// stop-rule orchestration lives in ClassifyPair (core/gamma.cc), which
// calls these primitives between decidability checks.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace galaxy::core {

/// Which counting kernel ClassifyPair uses for the residual scan. Every
/// policy produces the identical PairOutcome; policies differ only in the
/// work performed (and therefore in the reported comparison counts).
enum class KernelPolicy {
  /// Pick per pair: tiled for exhaustive/bounded scans, sweep for large
  /// two-dimensional residuals, sorted for large residuals otherwise.
  kAuto,
  /// The legacy per-pair CompareDominance loop (reference behavior; counts
  /// exactly one record comparison per resolved pair).
  kScalar,
  /// Cache-blocked branch-free tiles with per-tile stop checks.
  kTiled,
  /// Monotone-score ordered scan with one-way tests and bulk corner counts.
  kSorted,
  /// Exact 2D sweep; silently falls back to kTiled when d != 2 or when an
  /// ExecutionContext demands fine-grained charging.
  kSweep2D,
};

const char* KernelPolicyToString(KernelPolicy policy);

namespace kernel {

/// Pair counts accumulated by a kernel invocation.
struct KernelCounts {
  uint64_t n12 = 0;  ///< pairs (r in rows1, s in rows2) with r ≻ s
  uint64_t n21 = 0;  ///< pairs with s ≻ r
};

/// Auto-policy thresholds (exposed for tests and benches).
/// Residual-pair count from which the d=2 sweep beats the quadratic scan.
inline constexpr uint64_t kSweepMinPairs = 1ull << 16;
/// Residual-pair count from which the sorted path's O(k log k) setup pays.
inline constexpr uint64_t kSortedMinPairs = 256;
/// Tile edge lengths of the blocked scan (pairs per tile = kTileRows *
/// kTileCols). Sized so one tile's working set stays in L1 for d <= 8.
inline constexpr size_t kTileRows = 32;
inline constexpr size_t kTileCols = 128;
/// Tile edge used when an ExecutionContext is charged: one tile is one
/// charge batch, keeping the documented unwind latency (kChargeBatch work
/// units) intact.
inline constexpr size_t kBoundedTileEdge = 16;

/// Counts both domination directions over the dense block rows1 x rows2
/// (row-major, `dims` doubles per row). Branch-free and specialized for
/// dims 2..8; any other dimensionality takes the generic loop. Equal rows
/// contribute to neither count.
KernelCounts CountBlock(const double* rows1, size_t n1, const double* rows2,
                        size_t n2, size_t dims);

/// Counts rows of `rows` (n rows) that `r` dominates, under the guarantee
/// that no row equals `r` (the sorted path's strict-score ranges): r ≻ s
/// collapses to r >= s componentwise.
uint64_t CountDominatedOneWay(const double* r, const double* rows, size_t n,
                              size_t dims);

/// Counts rows of `rows` that dominate `r`, under the same no-equal-row
/// guarantee: s ≻ r collapses to s >= r componentwise.
uint64_t CountDominatingOneWay(const double* r, const double* rows, size_t n,
                               size_t dims);

/// True iff a >= b on every dimension.
bool GeqAll(const double* a, const double* b, size_t dims);

/// Exact dominance-pair counts for d = 2 in O((n1 + n2) log(n1 + n2)):
/// for each direction, counts pairs with componentwise >= via a sort +
/// Fenwick sweep, then subtracts the exactly-equal pairs (which dominate
/// in neither direction). `scratch` is reused across calls.
struct Sweep2DScratch {
  std::vector<double> xs1, ys1, xs2, ys2;
  std::vector<size_t> order1, order2;
  std::vector<double> unique_y;
  std::vector<uint32_t> fenwick;
};
KernelCounts CountPairsSweep2D(const double* rows1, size_t n1,
                               const double* rows2, size_t n2,
                               Sweep2DScratch* scratch);

/// Copies the rows listed in `idx` (indexes into a row-major buffer of
/// `dims`-wide rows) into the packed buffer `out` (resized to n * dims).
void GatherRows(const double* data, const uint32_t* idx, size_t n,
                size_t dims, std::vector<double>* out);

/// All-MAX monotone score of one packed row (sum of coordinates). Kept
/// bit-compatible with skyline::MonotoneScore on MAX-oriented data:
/// left-to-right summation.
double RowScore(const double* row, size_t dims);

/// Fills `order` with 0..n-1 sorted by decreasing RowScore of the packed
/// rows, ties by ascending index (deterministic), and `scores` with the
/// score of each row in the *sorted* order.
void SortByScoreDesc(const double* rows, size_t n, size_t dims,
                     std::vector<uint32_t>* order,
                     std::vector<double>* scores);

/// Componentwise suffix maxima of packed rows: out[i*dims + k] =
/// max(rows[j*dims + k] for j in [i, n)). out is resized to n * dims.
void BuildSuffixMax(const double* rows, size_t n, size_t dims,
                    std::vector<double>* out);

/// Componentwise prefix minima: out[i*dims + k] = min over j in [0, i].
void BuildPrefixMin(const double* rows, size_t n, size_t dims,
                    std::vector<double>* out);

}  // namespace kernel
}  // namespace galaxy::core

