#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace galaxy::core {

/// Incrementally maintained aggregate skyline over a dynamic record set.
///
/// Property 2 of the paper (stability to updates) argues that γ-dominance
/// degrades gracefully under record insertions/removals; this class is the
/// operational counterpart: it maintains the exact ordered domination
/// counts |S ≻ R| for every group pair, updating them in
/// O(total_records · d) per record change instead of recomputing all
/// pairwise counts (O(Σ |g_i||g_j| · d)) from scratch. Skyline membership
/// queries then cost O(groups²).
///
/// Records are MAX-oriented (negate MIN attributes before inserting), as
/// everywhere in core/.
class IncrementalAggregateSkyline {
 public:
  /// Creates an empty maintainer for `dims`-dimensional records with the
  /// given γ (in [0.5, 1]).
  IncrementalAggregateSkyline(size_t dims, double gamma = 0.5);

  /// Registers a new (initially empty) group; returns its id. Empty groups
  /// do not participate in dominance until they receive a record.
  uint32_t AddGroup(std::string label);

  /// Inserts one record into a group. O(total_records * dims).
  Status AddRecord(uint32_t group, const Point& record);

  /// Removes one record equal to `record` from the group (the first
  /// match); NotFound if absent. O(total_records * dims).
  Status RemoveRecord(uint32_t group, const Point& record);

  /// Number of ordered record pairs (x in s, y in r) with x ≻ y.
  Result<uint64_t> DominationCount(uint32_t s, uint32_t r) const;

  /// p(S ≻ R); error if either group is empty or ids are invalid.
  Result<double> DominationProbability(uint32_t s, uint32_t r) const;

  /// True iff group `r` is currently γ-dominated by some non-empty group.
  Result<bool> IsDominated(uint32_t r) const;

  /// Ids of the non-empty groups not γ-dominated by any other non-empty
  /// group (Definition 2 over the current state), ascending.
  std::vector<uint32_t> Skyline() const;

  size_t num_groups() const { return groups_.size(); }
  size_t total_records() const { return total_records_; }
  size_t dims() const { return dims_; }
  double gamma() const { return gamma_; }
  const std::string& label(uint32_t group) const {
    return groups_[group].label;
  }
  size_t group_size(uint32_t group) const {
    return groups_[group].records.size();
  }

 private:
  struct GroupState {
    std::string label;
    std::vector<Point> records;
  };

  bool ValidGroup(uint32_t g) const { return g < groups_.size(); }
  uint64_t& CountRef(uint32_t s, uint32_t r);
  uint64_t CountAt(uint32_t s, uint32_t r) const;

  size_t dims_;
  double gamma_;
  size_t total_records_ = 0;
  std::vector<GroupState> groups_;
  // counts_[s * groups_.size() + r] = |S ≻ R|; rebuilt (cheaply, counts
  // copied) when a group is added.
  std::vector<uint64_t> counts_;
};

}  // namespace galaxy::core

