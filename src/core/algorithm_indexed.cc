#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/algo_context.h"
#include "core/exec_context.h"
#include "spatial/rtree.h"

namespace galaxy::core::internal {

namespace {

// Canonical key for an unordered group pair, used to avoid classifying the
// same pair from both endpoints' window queries.
uint64_t PairKey(uint32_t a, uint32_t b) {
  uint32_t lo = a < b ? a : b;
  uint32_t hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

// Algorithm 5 ("IN"; with the MBB internal approximation enabled it is
// "LO"): groups are probed in priority order, and for each probe g1 a
// window query on an R-tree of group MBB max-corners returns exactly the
// groups that could γ-dominate g1 — those whose max corner lies in the
// region weakly dominating g1's min corner (Figure 9(a)). Only those
// candidates are compared. Classification marks both sides, so dominances
// discovered "by accident" (g1 beating a candidate) are kept as well; a
// dedup set prevents re-classifying a pair from the other endpoint.
void RunIndexed(AlgoContext& ctx) {
  const GroupedDataset& dataset = ctx.dataset();
  const size_t dims = dataset.dims();
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());

  // Charge the R-tree against the resident-memory budget before building
  // it: per entry one d-dimensional corner plus id, and roughly one
  // interior box per fan-out split. On budget exhaustion the context trips
  // (kResourceExhausted) and the run unwinds before allocating.
  ScopedReservation tree_reservation;
  if (ctx.options().exec != nullptr) {
    const uint64_t per_entry = dims * sizeof(double) + sizeof(uint32_t);
    const uint64_t per_node = 2 * dims * sizeof(double) + 64;
    const uint64_t fanout = std::max<uint64_t>(2, ctx.options().rtree_fanout);
    const uint64_t estimate =
        n * per_entry + (2 * uint64_t{n} / fanout + 1) * per_node;
    if (!tree_reservation.Reserve(ctx.options().exec, estimate).ok()) {
      return;
    }
  }

  spatial::RTree tree(dims, ctx.options().rtree_fanout);
  {
    std::vector<Point> corners;
    std::vector<uint32_t> ids;
    corners.reserve(n);
    ids.reserve(n);
    for (uint32_t g = 0; g < n; ++g) {
      corners.push_back(dataset.group(g).mbb().max);
      ids.push_back(g);
    }
    tree.BulkLoad(corners, ids);
  }

  std::vector<uint32_t> order =
      OrderGroups(dataset, ctx.options().ordering);
  std::unordered_set<uint64_t> compared;
  std::vector<uint32_t> candidates;

  for (uint32_t a = 0; a < n; ++a) {
    uint32_t i = order[a];
    if (ctx.Skippable(i)) continue;
    if (ctx.interrupted()) return;

    // All groups whose MBB max corner weakly dominates g1's min corner are
    // the only possible γ-dominators of g1.
    Box window(dataset.group(i).mbb().min,
               Point(dims, std::numeric_limits<double>::infinity()));
    candidates.clear();
    tree.WindowQuery(window, &candidates);
    if (ctx.stats() != nullptr) {
      ctx.stats()->window_candidates += candidates.size();
    }

    for (uint32_t j : candidates) {
      if (j == i) continue;
      if (ctx.Skippable(j)) {
        if (ctx.stats() != nullptr) ++ctx.stats()->pairs_skipped_strong;
        continue;
      }
      if (!compared.insert(PairKey(i, j)).second) {
        if (ctx.stats() != nullptr) ++ctx.stats()->pairs_skipped_dedup;
        continue;
      }
      if (ctx.interrupted()) return;
      ctx.Compare(i, j);
      if (ctx.options().prune_strongly_dominated &&
          ctx.strongly_dominated(i)) {
        break;  // the probe is out; stop searching for its dominators
      }
    }
  }
}

}  // namespace galaxy::core::internal
