#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exec_context.h"
#include "core/group.h"

namespace galaxy::core {

/// The Domination Matrix framework from the proof of Proposition 5: for
/// groups R and S, entry (i, j) is 1 iff record r_i dominates record s_j.
/// pos() — the fraction of non-zero entries — equals p(R ≻ S), and the
/// Boolean matrix product of the R-S and S-T matrices is a valid domination
/// matrix witness for R-T (record dominance is transitive). Exposed mainly
/// for tests and the theory examples (Figures 6 and 7).
class DominationMatrix {
 public:
  /// An `rows` x `cols` zero matrix.
  DominationMatrix(size_t rows, size_t cols);

  /// Builds the domination matrix of two groups (MAX-oriented records).
  static DominationMatrix Build(const Group& r, const Group& s);

  /// Like Build, but first charges the |r| x |s| cells against the
  /// resident-memory budget of `exec` (which may be null = unbounded) and
  /// fails with kResourceExhausted instead of allocating past the cap. The
  /// reservation is held for the lifetime of the returned matrix.
  static Result<DominationMatrix> TryBuild(const Group& r, const Group& s,
                                           ExecutionContext* exec);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  bool at(size_t i, size_t j) const { return cells_[i * cols_ + j] != 0; }
  void set(size_t i, size_t j, bool value) {
    cells_[i * cols_ + j] = value ? 1 : 0;
  }

  /// Number of non-zero entries.
  uint64_t CountPositive() const;

  /// Fraction of non-zero entries: p(R ≻ S).
  double pos() const;

  /// Boolean matrix product: (A * B)(i, k) = OR_j A(i, j) AND B(j, k).
  /// Requires cols() == other.rows(). If A is the R-S domination matrix and
  /// B the S-T one, every non-zero entry of the product certifies r_i ≻ t_k
  /// by transitivity, so pos(product) is a lower bound for p(R ≻ T).
  DominationMatrix BooleanProduct(const DominationMatrix& other) const;

  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<uint8_t> cells_;
  /// Byte reservation backing TryBuild-created matrices (shared so the
  /// matrix stays copyable; released when the last copy dies).
  std::shared_ptr<ScopedReservation> reservation_;
};

}  // namespace galaxy::core

