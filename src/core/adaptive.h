#pragma once

#include <cstddef>
#include <string>

#include "core/group.h"
#include "core/options.h"

namespace galaxy::core {

/// Cheap structural statistics of a grouped dataset, used to pick an
/// algorithm. Addresses the paper's concluding remark that "some specific
/// data distributions remain challenging ... opening toward the
/// development of customized query optimization methods": Figure 11 shows
/// the pure index-based approach losing to the nested-loop family once
/// group MBBs overlap heavily, and Section 3.4 argues for processing small
/// groups first on heavy-tailed group sizes.
struct WorkloadProfile {
  size_t num_groups = 0;
  size_t total_records = 0;
  double avg_group_size = 0.0;
  /// Share of all records held by the largest group (≈ 1/num_groups for
  /// balanced workloads, large for Zipfian ones).
  double max_group_share = 0.0;
  /// Estimated fraction of groups returned by an Algorithm 5 window query
  /// for a random probe group (1.0 = the index prunes nothing).
  double window_selectivity = 0.0;

  std::string ToString() const;
};

/// Profiles the dataset; `sample_size` probe groups are used to estimate
/// the window selectivity (cost O(sample_size * num_groups * dims)).
/// When `exec` is set, each probe's group scan is charged to the budget
/// control plane; on a trip the sampling loop stops early and the profile
/// built so far is returned — the profile only steers the planner, so a
/// truncated estimate degrades the algorithm choice, never correctness.
WorkloadProfile ProfileWorkload(const GroupedDataset& dataset,
                                size_t sample_size = 64,
                                ExecutionContext* exec = nullptr);

/// Decision of the adaptive planner.
struct AdaptiveChoice {
  Algorithm algorithm = Algorithm::kIndexedBbox;
  GroupOrdering ordering = GroupOrdering::kCornerDistance;
};

/// Picks algorithm and ordering from a profile:
///  * window selectivity above `selectivity_threshold` (default 0.7) means
///    the R-tree cannot prune, so the sorted nested loop (SI) is used;
///    otherwise the indexed algorithm with MBB approximation (LO);
///  * a dominant largest group (share above `skew_threshold`, default 4x
///    the balanced share) switches to smallest-groups-first ordering
///    (the global optimization of Section 3.4).
AdaptiveChoice ChooseAlgorithm(const WorkloadProfile& profile,
                               double selectivity_threshold = 0.7,
                               double skew_threshold_factor = 4.0);

}  // namespace galaxy::core

