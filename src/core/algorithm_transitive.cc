#include "core/algo_context.h"

namespace galaxy::core::internal {

// Algorithm 3 ("TR"): nested loop that exploits weak transitivity
// (Proposition 5). Groups found γ̄-dominated ("strongly dominated") are
// skipped both as probes and as comparison partners; when the probe itself
// becomes strongly dominated its processing ends immediately (line 19).
void RunTransitive(AlgoContext& ctx) {
  const uint32_t n = static_cast<uint32_t>(ctx.dataset().num_groups());
  for (uint32_t i = 0; i < n; ++i) {
    if (ctx.Skippable(i)) continue;
    for (uint32_t j = i + 1; j < n; ++j) {
      if (ctx.Skippable(j)) {
        if (ctx.stats() != nullptr) ++ctx.stats()->pairs_skipped_strong;
        continue;
      }
      if (ctx.interrupted()) return;
      PairOutcome outcome = ctx.Compare(i, j);
      if (outcome == PairOutcome::kSecondDominatesStrongly &&
          ctx.options().prune_strongly_dominated) {
        break;  // "end processing of g1"
      }
    }
  }
}

// Algorithm 4 ("SI"): identical pruning to Algorithm 3, but groups are
// probed in a priority order — by default descending corner-distance sum of
// the group MBB, so groups likely to dominate many others are processed
// first and strong dominance is discovered early.
void RunSorted(AlgoContext& ctx) {
  std::vector<uint32_t> order =
      OrderGroups(ctx.dataset(), ctx.options().ordering);
  const uint32_t n = static_cast<uint32_t>(order.size());
  for (uint32_t a = 0; a < n; ++a) {
    uint32_t i = order[a];
    if (ctx.Skippable(i)) continue;
    for (uint32_t b = a + 1; b < n; ++b) {
      uint32_t j = order[b];
      if (ctx.Skippable(j)) {
        if (ctx.stats() != nullptr) ++ctx.stats()->pairs_skipped_strong;
        continue;
      }
      if (ctx.interrupted()) return;
      PairOutcome outcome = ctx.Compare(i, j);
      if (outcome == PairOutcome::kSecondDominatesStrongly &&
          ctx.options().prune_strongly_dominated) {
        break;
      }
    }
  }
}

}  // namespace galaxy::core::internal
