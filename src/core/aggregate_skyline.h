#ifndef GALAXY_CORE_AGGREGATE_SKYLINE_H_
#define GALAXY_CORE_AGGREGATE_SKYLINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/group.h"
#include "core/options.h"

namespace galaxy::core {

/// The output of an aggregate-skyline computation.
struct AggregateSkylineResult {
  /// Ids of the groups in the skyline, ascending.
  std::vector<uint32_t> skyline;
  /// Per group id: γ-dominated by some group (as established by the chosen
  /// algorithm; see DESIGN.md on the weak-transitivity gap of TR/SI/IN/LO).
  std::vector<uint8_t> dominated;
  /// Per group id: γ̄-dominated (strong domination).
  std::vector<uint8_t> strongly_dominated;
  /// Work counters for the run.
  AggregateSkylineStats stats;
  /// The concrete algorithm that ran (resolves kAuto to its choice).
  Algorithm algorithm_used = Algorithm::kBruteForce;

  /// True if the group id is in the skyline.
  bool Contains(uint32_t id) const;

  /// Labels of the skyline groups, in skyline order.
  std::vector<std::string> Labels(const GroupedDataset& dataset) const;
};

/// Computes the aggregate skyline of Definition 2: the groups of `dataset`
/// not γ-dominated by any other group, using the algorithm and tuning in
/// `options`. Thread-compatible: concurrent calls on the same dataset are
/// safe.
AggregateSkylineResult ComputeAggregateSkyline(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options = {});

/// A group together with the smallest γ for which it belongs to the
/// skyline.
struct RankedGroup {
  uint32_t id = 0;
  std::string label;
  /// The largest domination probability any other group scores against this
  /// group, clamped up to 0.5: the group is in Sky_γ for every γ >= min_gamma
  /// (unless always_dominated).
  double min_gamma = 0.5;
  /// True when some group dominates this one with probability 1 (strict
  /// dominance): the group is in no γ-skyline.
  bool always_dominated = false;
  /// The group scoring the highest domination probability against this one
  /// (its "strongest attacker"); equal to `id` itself when nothing attacks
  /// it at all (probability 0 from everyone).
  uint32_t strongest_dominator = 0;
  /// That attacker's domination probability.
  double strongest_probability = 0.0;
};

/// Ranks all groups by the minimum γ at which they enter the skyline
/// (Section 2.2's "compute all groups that can be in an aggregate skyline
/// and return them in sorted order"). Strictly dominated groups sort last.
/// Cost is one exact domination probability per ordered group pair.
std::vector<RankedGroup> RankByGamma(const GroupedDataset& dataset);

}  // namespace galaxy::core

#endif  // GALAXY_CORE_AGGREGATE_SKYLINE_H_
