#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exec_context.h"
#include "core/group.h"
#include "core/options.h"

namespace galaxy::core {

/// The output of an aggregate-skyline computation.
struct AggregateSkylineResult {
  /// Ids of the groups in the skyline, ascending.
  std::vector<uint32_t> skyline;
  /// Per group id: γ-dominated by some group (as established by the chosen
  /// algorithm; see DESIGN.md on the weak-transitivity gap of TR/SI/IN/LO).
  std::vector<uint8_t> dominated;
  /// Per group id: γ̄-dominated (strong domination).
  std::vector<uint8_t> strongly_dominated;
  /// Work counters for the run.
  AggregateSkylineStats stats;
  /// The concrete algorithm that ran (resolves kAuto to its choice).
  Algorithm algorithm_used = Algorithm::kBruteForce;
  /// Whether the skyline is exact or a sound over-approximation (set to
  /// kApproximateSuperset only by ComputeAggregateSkylineBounded after a
  /// graceful degradation; see core/exec_context.h).
  ResultQuality quality = ResultQuality::kExact;

  /// True if the group id is in the skyline.
  bool Contains(uint32_t id) const;

  /// Labels of the skyline groups, in skyline order.
  std::vector<std::string> Labels(const GroupedDataset& dataset) const;
};

/// Computes the aggregate skyline of Definition 2: the groups of `dataset`
/// not γ-dominated by any other group, using the algorithm and tuning in
/// `options`. Thread-compatible: concurrent calls on the same dataset are
/// safe.
AggregateSkylineResult ComputeAggregateSkyline(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options = {});

/// The control-plane-aware entry point: like ComputeAggregateSkyline, but
/// honors `options.exec` (deadline, cancellation, comparison and memory
/// budgets; core/exec_context.h). When the context stops the run:
///  - with `options.allow_approximate` set and a degradable trip reason
///    (cancel / deadline / comparison budget), the partial — always sound —
///    dominance marks are merged with a bounded anytime salvage pass and
///    the result is returned tagged ResultQuality::kApproximateSuperset
///    (kExact if the salvage pass happened to finish the job);
///  - otherwise the trip reason propagates as an error Status
///    (kCancelled / kDeadlineExceeded / kResourceExhausted) and no result
///    is returned. Memory-budget trips always take this branch.
/// With a null `options.exec` this is exactly ComputeAggregateSkyline.
Result<AggregateSkylineResult> ComputeAggregateSkylineBounded(
    const GroupedDataset& dataset, const AggregateSkylineOptions& options);

/// A group together with the smallest γ for which it belongs to the
/// skyline.
struct RankedGroup {
  uint32_t id = 0;
  std::string label;
  /// The largest domination probability any other group scores against this
  /// group, clamped up to 0.5: the group is in Sky_γ for every γ >= min_gamma
  /// (unless always_dominated).
  double min_gamma = 0.5;
  /// True when some group dominates this one with probability 1 (strict
  /// dominance): the group is in no γ-skyline.
  bool always_dominated = false;
  /// The group scoring the highest domination probability against this one
  /// (its "strongest attacker"); equal to `id` itself when nothing attacks
  /// it at all (probability 0 from everyone).
  uint32_t strongest_dominator = 0;
  /// That attacker's domination probability.
  double strongest_probability = 0.0;
};

/// Ranks all groups by the minimum γ at which they enter the skyline
/// (Section 2.2's "compute all groups that can be in an aggregate skyline
/// and return them in sorted order"). Strictly dominated groups sort last.
/// Cost is one exact domination probability per ordered group pair.
std::vector<RankedGroup> RankByGamma(const GroupedDataset& dataset);

/// Budget-aware RankByGamma: charges each pair's |S|·|R| record
/// comparisons to `exec` before scanning it and fails with the trip status
/// once the control plane stops. A partial ranking is never returned — the
/// ordering is only meaningful over the full pair matrix. The unwind
/// latency is one pair product (an exact probability is an atomic unit),
/// coarser than the kChargeBatch slice of the counting kernels. A null
/// `exec` is unbounded.
Result<std::vector<RankedGroup>> RankByGammaBounded(
    const GroupedDataset& dataset, ExecutionContext* exec);

}  // namespace galaxy::core

