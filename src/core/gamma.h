#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/count_kernel.h"
#include "core/exec_context.h"
#include "core/group.h"

namespace galaxy::core {

/// The pair of thresholds steering a γ-skyline computation: γ itself
/// (Definition 3; must be >= 0.5 for asymmetry, Proposition 1) and the
/// derived weak-transitivity threshold γ̄ = max(γ, 1 − √(1−γ)/2)
/// (Proposition 5; the max() clamp keeps strong domination a special case
/// of γ-domination for γ > 3/4 — see DESIGN.md, "reproduction notes").
struct GammaThresholds {
  double gamma;
  double gamma_bar;

  /// Derives γ̄ from γ with the paper's formula (clamped); aborts if γ is
  /// outside [0.5, 1].
  static GammaThresholds FromGamma(double gamma);

  /// Derives a *provably sufficient* γ̄ = (3+γ)/4 instead. The paper's
  /// Proposition 5 threshold is refuted by explicit counterexamples (see
  /// DESIGN.md erratum 3); this variant follows from a union-bound on the
  /// domination-matrix product: if p(R≻S) and p(S≻T) both exceed (3+γ)/4,
  /// then p(R≻T) > γ. Always ≥ the paper threshold, so pruning fires less
  /// often but the two-step chain argument actually holds.
  static GammaThresholds FromGammaProven(double gamma);
};

/// Number of ordered record pairs (s, r) in S x R with s ≻ r (the paper's
/// |S ≻ R|). Exact, exhaustive O(|S|·|R|·d).
uint64_t CountDominatedPairs(const Group& s, const Group& r);

/// p(S ≻ R) = |S ≻ R| / (|S|·|R|) (Definition 3). Exact. Definition 3's
/// probability is undefined when either group is empty; by convention an
/// empty group neither dominates nor is dominated, so the probability is
/// defined as 0 (never NaN).
double DominationProbability(const Group& s, const Group& r);

/// True iff S γ-dominates R: p(S ≻ R) = 1 or p(S ≻ R) > γ (Definition 3).
/// False whenever either group is empty (an empty group neither dominates
/// nor is dominated).
bool GammaDominates(const Group& s, const Group& r, double gamma);

/// The classification of one group pair against both thresholds.
/// "Strongly" (γ̄-domination) implies plain (γ) domination since γ̄ >= γ.
/// At most one direction can dominate when γ >= 0.5 (asymmetry).
enum class PairOutcome {
  kIncomparable,
  kFirstDominates,          ///< g1 ≻γ g2 but not g1 ≻γ̄ g2
  kFirstDominatesStrongly,  ///< g1 ≻γ̄ g2
  kSecondDominates,         ///< g2 ≻γ g1 but not g2 ≻γ̄ g1
  kSecondDominatesStrongly  ///< g2 ≻γ̄ g1
};

const char* PairOutcomeToString(PairOutcome outcome);

/// Work counters for a single pair classification.
struct PairCompareStats {
  uint64_t record_comparisons = 0;  ///< pairwise dominance tests executed
  uint64_t pairs_total = 0;         ///< |g1| * |g2|
  uint64_t pairs_resolved_by_mbb = 0;  ///< pairs decided from MBB regions
  /// Records (from either group) classified analytically against the other
  /// group's MBB corners, skipping their pairwise scans entirely.
  uint64_t records_preclassified = 0;
  /// The counting kernel that ran the residual scan (kAuto resolved).
  KernelPolicy kernel_used = KernelPolicy::kAuto;
  bool mbb_strict_shortcut = false;    ///< decided by min/max corner alone
  bool stopped_early = false;          ///< stop rule fired before full scan
  /// The governing ExecutionContext stopped the scan before the pair was
  /// classified; the returned outcome is kIncomparable and must NOT be
  /// recorded as knowledge about the pair.
  bool aborted = false;

  /// Fraction of the pair's records decided by MBB preclassification
  /// (0 when the MBB optimization is off or the groups are empty).
  double preclassified_record_fraction(uint64_t total_records) const {
    if (total_records == 0) return 0.0;
    return static_cast<double>(records_preclassified) /
           static_cast<double>(total_records);
  }
};

/// Tuning knobs for pair classification (Section 3.3 of the paper).
struct PairCompareOptions {
  /// Abort the pairwise scan once the outcome is decided w.r.t. both γ and
  /// γ̄ ("stopping rule").
  bool use_stop_rule = true;
  /// Pre-classify records against the opposing group's MBB corners
  /// (Figure 9 (b)-(c)): records below the opponent's min corner are
  /// dominated by the whole opponent group, records above its max corner
  /// dominate the whole group; only the residual block is scanned.
  bool use_mbb = false;
  /// Optional control plane: record comparisons are charged to it in
  /// batches of ExecutionContext::kChargeBatch, and the scan aborts
  /// (stats->aborted) within one batch of the context stopping. Null means
  /// unbounded (no charging at all).
  ExecutionContext* exec = nullptr;
  /// Counting kernel for the residual scan (core/count_kernel.h). Every
  /// policy yields the identical PairOutcome; kAuto picks tiled for
  /// exhaustive or charged scans, the 2D sweep or the sorted-score path
  /// for large residuals otherwise.
  KernelPolicy kernel = KernelPolicy::kAuto;
};

/// Classifies the pair (g1, g2) against the thresholds. The result is
/// identical for every option combination; options only change the work
/// performed. `stats` may be null. A pair involving an empty group is
/// always kIncomparable (see DominationProbability).
PairOutcome ClassifyPair(const Group& g1, const Group& g2,
                         const GammaThresholds& thresholds,
                         const PairCompareOptions& options = {},
                         PairCompareStats* stats = nullptr);

/// The interval γ' can move to when an ε-fraction of the dominating
/// group's records is removed (Property 2, with the corrected tight
/// constants — DESIGN.md erratum 2): [max(0, (γ−ε)/(1−ε)), min(1, γ/(1−ε))].
struct GammaDriftBounds {
  double lower;
  double upper;
};

/// Computes the corrected stability-to-updates bounds; requires ε in [0, 1).
GammaDriftBounds StabilityBounds(double gamma, double epsilon);

namespace internal {

/// Decidability of the predicate "final count == total || final count >
/// threshold * total" given `known` true pairs out of `resolved` processed
/// pairs (the final count lies in [known, known + total - resolved]).
/// `total == 0` (an empty group on either side) decides to false: an empty
/// group neither dominates nor is dominated.
struct BoundDecision {
  bool decided = false;
  bool value = false;
};

BoundDecision DecideDominance(uint64_t known, uint64_t resolved,
                              uint64_t total, double threshold);

/// The analytic pair accounting of the Figure 9(c) MBB pre-classification:
/// records of one group below the other group's MBB min corner are
/// dominated by the entire other group ("area A"); records above the other
/// group's MBB max corner dominate the entire other group ("area C"). The
/// counts cover every ordered record pair touching a pre-classified record;
/// only rest1 x rest2 remains to be scanned pairwise. Requires both groups
/// non-empty.
struct MbbPreclassification {
  uint64_t n12 = 0;      ///< pre-classified pairs (r in g1, s in g2), r ≻ s
  uint64_t n21 = 0;      ///< pre-classified pairs with s ≻ r
  uint64_t resolved = 0; ///< |g1|·|g2| − |rest1|·|rest2|
  std::vector<uint32_t> rest1;  ///< g1 records needing pairwise scanning
  std::vector<uint32_t> rest2;  ///< g2 records needing pairwise scanning
};

MbbPreclassification PreclassifyWithMbb(const Group& g1, const Group& g2);

/// Tries to determine the pair outcome from partial counts (the Section
/// 3.3 stopping rule): returns true and sets `*outcome` once the
/// classification can no longer change.
bool TryResolveOutcome(uint64_t n12, uint64_t n21, uint64_t resolved,
                       uint64_t total, const GammaThresholds& thresholds,
                       PairOutcome* outcome);

}  // namespace internal

}  // namespace galaxy::core

