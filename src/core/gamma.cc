#include "core/gamma.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace galaxy::core {

GammaThresholds GammaThresholds::FromGamma(double gamma) {
  GALAXY_CHECK_GE(gamma, 0.5) << "gamma must be >= 0.5 for asymmetry";
  GALAXY_CHECK_LE(gamma, 1.0);
  GammaThresholds t;
  t.gamma = gamma;
  // Proposition 5's threshold 1 - sqrt(1-γ)/2 falls below γ itself once
  // γ > 3/4; "strong" domination must still imply plain γ-domination (the
  // algorithms exclude strongly dominated groups from the result), so the
  // effective strong threshold is clamped to at least γ. This keeps the
  // weak-transitivity premise (p > 1 - sqrt(1-γ)/2) intact for every γ.
  t.gamma_bar = std::max(gamma, 1.0 - std::sqrt(1.0 - gamma) / 2.0);
  return t;
}

GammaThresholds GammaThresholds::FromGammaProven(double gamma) {
  GALAXY_CHECK_GE(gamma, 0.5) << "gamma must be >= 0.5 for asymmetry";
  GALAXY_CHECK_LE(gamma, 1.0);
  GammaThresholds t;
  t.gamma = gamma;
  // Union bound over the domination-matrix product (DESIGN.md erratum 3):
  // with zero-fractions a, b in the R-S and S-T matrices, the product's
  // zero fraction is at most (sqrt(a) + sqrt(b))^2; premise zero-fractions
  // below (1-gamma)/4 each therefore force p(R≻T) > gamma.
  t.gamma_bar = (3.0 + gamma) / 4.0;
  return t;
}

uint64_t CountDominatedPairs(const Group& s, const Group& r) {
  GALAXY_CHECK_EQ(s.dims(), r.dims());
  uint64_t count = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    auto si = s.point(i);
    for (size_t j = 0; j < r.size(); ++j) {
      if (skyline::Dominates(si, r.point(j))) ++count;
    }
  }
  return count;
}

double DominationProbability(const Group& s, const Group& r) {
  uint64_t total = static_cast<uint64_t>(s.size()) * r.size();
  // Definition 3's probability is undefined over an empty group; 0/0 would
  // yield NaN here and poison every downstream comparison. An empty group
  // neither dominates nor is dominated.
  if (total == 0) return 0.0;
  return static_cast<double>(CountDominatedPairs(s, r)) /
         static_cast<double>(total);
}

bool GammaDominates(const Group& s, const Group& r, double gamma) {
  if (s.size() == 0 || r.size() == 0) return false;
  double p = DominationProbability(s, r);
  return p == 1.0 || p > gamma;
}

GammaDriftBounds StabilityBounds(double gamma, double epsilon) {
  GALAXY_CHECK_GE(epsilon, 0.0);
  GALAXY_CHECK_LT(epsilon, 1.0);
  GALAXY_CHECK_GE(gamma, 0.0);
  GALAXY_CHECK_LE(gamma, 1.0);
  GammaDriftBounds bounds;
  bounds.lower = std::max(0.0, (gamma - epsilon) / (1.0 - epsilon));
  bounds.upper = std::min(1.0, gamma / (1.0 - epsilon));
  return bounds;
}

const char* PairOutcomeToString(PairOutcome outcome) {
  switch (outcome) {
    case PairOutcome::kIncomparable:
      return "incomparable";
    case PairOutcome::kFirstDominates:
      return "first-dominates";
    case PairOutcome::kFirstDominatesStrongly:
      return "first-dominates-strongly";
    case PairOutcome::kSecondDominates:
      return "second-dominates";
    case PairOutcome::kSecondDominatesStrongly:
      return "second-dominates-strongly";
  }
  return "?";
}

namespace internal {

BoundDecision DecideDominance(uint64_t known, uint64_t resolved,
                              uint64_t total, double threshold) {
  if (total == 0) {
    // Empty pair space: without this guard `known == total` would claim
    // p == 1 for a pair involving an empty group.
    BoundDecision d;
    d.decided = true;
    d.value = false;
    return d;
  }
  uint64_t upper = known + (total - resolved);
  double bar = threshold * static_cast<double>(total);
  BoundDecision d;
  if (static_cast<double>(known) > bar || known == total) {
    d.decided = true;
    d.value = true;
  } else if (upper < total && !(static_cast<double>(upper) > bar)) {
    d.decided = true;
    d.value = false;
  } else if (resolved == total) {
    d.decided = true;
    d.value = (known == total) || (static_cast<double>(known) > bar);
  }
  return d;
}

MbbPreclassification PreclassifyWithMbb(const Group& g1, const Group& g2) {
  GALAXY_CHECK_GT(g1.size(), 0u);
  GALAXY_CHECK_GT(g2.size(), 0u);
  const Box& b1 = g1.mbb();
  const Box& b2 = g2.mbb();
  const uint64_t n1 = g1.size();
  const uint64_t n2 = g2.size();

  // Figure 9(c): records of one group falling below the other group's min
  // corner are dominated by the entire other group ("area A"); records
  // above the other group's max corner dominate the entire other group
  // ("area C"). Count those pairs analytically and scan only the rest.
  // The rest vectors grow lazily (amortized push_back) instead of
  // reserving the full group size up front: on well-separated groups the
  // corner tests classify almost every record and a full reserve would
  // allocate |g| slots to hold a handful of survivors. Oversized leftover
  // capacity is returned once the survivor count is known.
  MbbPreclassification pre;
  uint64_t a2 = 0;  // g1 records dominated by all of g2 (below b2.min)
  uint64_t c1 = 0;  // g1 records dominating all of g2 (above b2.max)
  for (uint32_t i = 0; i < g1.size(); ++i) {
    auto r = g1.point(i);
    if (skyline::Dominates(b2.min, r)) {
      ++a2;
    } else if (skyline::Dominates(r, b2.max)) {
      ++c1;
    } else {
      pre.rest1.push_back(i);
    }
  }
  uint64_t a1 = 0;  // g2 records dominated by all of g1
  uint64_t c2 = 0;  // g2 records dominating all of g1
  for (uint32_t j = 0; j < g2.size(); ++j) {
    auto s = g2.point(j);
    if (skyline::Dominates(b1.min, s)) {
      ++a1;
    } else if (skyline::Dominates(s, b1.max)) {
      ++c2;
    } else {
      pre.rest2.push_back(j);
    }
  }
  if (pre.rest1.capacity() > 2 * pre.rest1.size()) pre.rest1.shrink_to_fit();
  if (pre.rest2.capacity() > 2 * pre.rest2.size()) pre.rest2.shrink_to_fit();
  // Every pair touching a pre-classified record is decided:
  //   r ≻ s holds for (any r, s in A1) and (r in C1, s not in A1);
  //   s ≻ r holds for (r in A2, any s) and (s in C2, r not in A2);
  //   all other flagged combinations are non-dominating in both
  //   directions.
  pre.n12 = a1 * n1 + c1 * (n2 - a1);
  pre.n21 = a2 * n2 + c2 * (n1 - a2);
  pre.resolved = n1 * n2 -
                 static_cast<uint64_t>(pre.rest1.size()) * pre.rest2.size();
  return pre;
}

bool TryResolveOutcome(uint64_t n12, uint64_t n21, uint64_t resolved,
                       uint64_t total, const GammaThresholds& thresholds,
                       PairOutcome* outcome) {
  BoundDecision f_strong =
      DecideDominance(n12, resolved, total, thresholds.gamma_bar);
  BoundDecision f_gamma =
      DecideDominance(n12, resolved, total, thresholds.gamma);
  BoundDecision s_strong =
      DecideDominance(n21, resolved, total, thresholds.gamma_bar);
  BoundDecision s_gamma =
      DecideDominance(n21, resolved, total, thresholds.gamma);
  // Shortcut exits mirroring the stopping rule of Section 3.3: a decided
  // strong domination ends the comparison; a decided weak domination ends
  // it once strong domination is excluded; four decided negatives mean
  // incomparability.
  if (f_strong.decided && f_strong.value) {
    *outcome = PairOutcome::kFirstDominatesStrongly;
    return true;
  }
  if (s_strong.decided && s_strong.value) {
    *outcome = PairOutcome::kSecondDominatesStrongly;
    return true;
  }
  if (f_gamma.decided && f_gamma.value && f_strong.decided) {
    *outcome = PairOutcome::kFirstDominates;
    return true;
  }
  if (s_gamma.decided && s_gamma.value && s_strong.decided) {
    *outcome = PairOutcome::kSecondDominates;
    return true;
  }
  if (f_gamma.decided && !f_gamma.value && s_gamma.decided &&
      !s_gamma.value) {
    *outcome = PairOutcome::kIncomparable;
    return true;
  }
  return false;
}

}  // namespace internal

namespace {

PairOutcome OutcomeFromPredicates(bool first_gamma, bool first_strong,
                                  bool second_gamma, bool second_strong) {
  if (first_strong) return PairOutcome::kFirstDominatesStrongly;
  if (first_gamma) return PairOutcome::kFirstDominates;
  if (second_strong) return PairOutcome::kSecondDominatesStrongly;
  if (second_gamma) return PairOutcome::kSecondDominates;
  return PairOutcome::kIncomparable;
}

// ---- Residual-scan machinery (core/count_kernel.h orchestration). ---------

// Reused per-thread buffers: the kernels are allocation-free on the steady
// state, the scratch grows to the largest residual seen by this thread.
struct ScanScratch {
  std::vector<double> rows1, rows2;      // gathered residual rows
  std::vector<double> sorted1, sorted2;  // score-descending copies
  std::vector<uint32_t> order1, order2;
  std::vector<double> scores1, scores2;
  std::vector<double> suffmax2, premin2;
  kernel::Sweep2DScratch sweep;
};

ScanScratch& TlsScanScratch() {
  thread_local ScanScratch scratch;
  return scratch;
}

// Counts and control-plane accounting of one residual scan. Comparisons
// accumulate locally (one add into PairCompareStats at scan end — never a
// per-pair `stats != nullptr` branch) and are charged to the context in
// batches of ExecutionContext::kChargeBatch.
struct ScanState {
  uint64_t n12 = 0;
  uint64_t n21 = 0;
  uint64_t resolved = 0;
  uint64_t total = 0;
  uint64_t comparisons = 0;
  uint64_t uncharged = 0;
  ExecutionContext* exec = nullptr;
  bool aborted = false;

  bool Charge(uint64_t n) {
    comparisons += n;
    if (exec == nullptr) return true;
    uncharged += n;
    if (uncharged >= ExecutionContext::kChargeBatch) {
      const uint64_t amount = uncharged;
      uncharged = 0;
      if (!exec->Charge(amount)) {
        aborted = true;
        return false;
      }
    }
    return true;
  }

  void FlushCharges() {
    if (exec != nullptr && uncharged != 0) {
      exec->Charge(uncharged);
      uncharged = 0;
    }
  }
};

// Resolves kAuto per pair. A charged scan always tiles (one bounded tile =
// one charge batch keeps the documented unwind latency); exhaustive scans
// tile for predictable reference counting; large stop-rule scans take the
// 2D sweep or the sorted-score path. An explicit kSweep2D demotes to
// kTiled when it cannot run (d != 2, or fine-grained charging required).
KernelPolicy ResolveKernelPolicy(KernelPolicy requested, size_t dims,
                                 uint64_t residual_pairs, bool use_stop_rule,
                                 bool has_exec) {
  KernelPolicy p = requested;
  if (p == KernelPolicy::kAuto) {
    if (has_exec || !use_stop_rule) {
      p = KernelPolicy::kTiled;
    } else if (dims == 2 && residual_pairs >= kernel::kSweepMinPairs) {
      p = KernelPolicy::kSweep2D;
    } else if (residual_pairs >= kernel::kSortedMinPairs) {
      p = KernelPolicy::kSorted;
    } else {
      p = KernelPolicy::kTiled;
    }
  }
  if (p == KernelPolicy::kSweep2D && (dims != 2 || has_exec)) {
    p = KernelPolicy::kTiled;
  }
  return p;
}

// The legacy per-pair CompareDominance loop (KernelPolicy::kScalar): one
// span-based comparison and one resolved pair per step, decidability
// checked per inner row plus every kCheckStride pairs inside long rows.
// Returns true when the scan ended early (decided into *outcome, or
// st.aborted).
bool ScanScalar(const Group& g1, const Group& g2,
                const std::vector<uint32_t>* rest1,
                const std::vector<uint32_t>* rest2, bool use_stop_rule,
                const GammaThresholds& thresholds, ScanState& st,
                PairOutcome* outcome) {
  constexpr uint64_t kCheckStride = 1024;
  uint64_t next_check = st.resolved + kCheckStride;
  const size_t k1 = rest1 != nullptr ? rest1->size() : g1.size();
  const size_t k2 = rest2 != nullptr ? rest2->size() : g2.size();
  for (size_t ii = 0; ii < k1; ++ii) {
    auto r = g1.point(rest1 != nullptr ? (*rest1)[ii] : ii);
    for (size_t jj = 0; jj < k2; ++jj) {
      skyline::DominanceResult cmp = skyline::CompareDominance(
          r, g2.point(rest2 != nullptr ? (*rest2)[jj] : jj));
      if (cmp == skyline::DominanceResult::kLeftDominates) {
        ++st.n12;
      } else if (cmp == skyline::DominanceResult::kRightDominates) {
        ++st.n21;
      }
      ++st.resolved;
      if (!st.Charge(1)) return true;
      if (use_stop_rule && st.resolved >= next_check) {
        next_check = st.resolved + kCheckStride;
        if (internal::TryResolveOutcome(st.n12, st.n21, st.resolved,
                                        st.total, thresholds, outcome)) {
          return true;
        }
      }
    }
    if (use_stop_rule &&
        internal::TryResolveOutcome(st.n12, st.n21, st.resolved, st.total,
                                    thresholds, outcome)) {
      return true;
    }
  }
  return false;
}

// Cache-blocked branch-free counting; the incremental stop rule runs at
// tile boundaries. Charged scans shrink the tile to one charge batch.
bool ScanTiled(const double* rows1, size_t k1, const double* rows2,
               size_t k2, size_t dims, bool use_stop_rule,
               const GammaThresholds& thresholds, ScanState& st,
               PairOutcome* outcome) {
  const size_t tile_rows =
      st.exec != nullptr ? kernel::kBoundedTileEdge : kernel::kTileRows;
  const size_t tile_cols =
      st.exec != nullptr ? kernel::kBoundedTileEdge : kernel::kTileCols;
  for (size_t i0 = 0; i0 < k1; i0 += tile_rows) {
    const size_t ni = std::min(tile_rows, k1 - i0);
    for (size_t j0 = 0; j0 < k2; j0 += tile_cols) {
      const size_t nj = std::min(tile_cols, k2 - j0);
      kernel::KernelCounts c = kernel::CountBlock(
          rows1 + i0 * dims, ni, rows2 + j0 * dims, nj, dims);
      st.n12 += c.n12;
      st.n21 += c.n21;
      const uint64_t pairs = static_cast<uint64_t>(ni) * nj;
      st.resolved += pairs;
      if (!st.Charge(pairs)) return true;
      if (use_stop_rule &&
          internal::TryResolveOutcome(st.n12, st.n21, st.resolved, st.total,
                                      thresholds, outcome)) {
        return true;
      }
    }
  }
  return false;
}

// Monotone-score ordered scan. Both sides are sorted by decreasing score;
// for each outer row the inner side splits into a strictly-greater prefix
// (only s ≻ r possible), an equal-score band (either direction — floating
// point score ties do not imply record equality, so the full two-way test
// runs there), and a strictly-smaller suffix (only r ≻ s possible). The
// one-directional ranges use componentwise->= tests (strict score
// difference rules out equal records) and whole-range corner shortcuts.
bool ScanSorted(const double* sorted1, const double* scores1, size_t k1,
                const double* sorted2, const double* scores2, size_t k2,
                size_t dims, bool use_stop_rule,
                const GammaThresholds& thresholds, ScanState& st,
                ScanScratch& sc, PairOutcome* outcome) {
  kernel::BuildSuffixMax(sorted2, k2, dims, &sc.suffmax2);
  kernel::BuildPrefixMin(sorted2, k2, dims, &sc.premin2);
  size_t e_gt = 0;  // end of the strictly-greater inner prefix
  size_t e_ge = 0;  // end of the >= inner prefix (equal band included)
  for (size_t i = 0; i < k1; ++i) {
    const double* r = sorted1 + i * dims;
    const double score = scores1[i];
    while (e_gt < k2 && scores2[e_gt] > score) ++e_gt;
    if (e_ge < e_gt) e_ge = e_gt;
    while (e_ge < k2 && scores2[e_ge] >= score) ++e_ge;

    if (e_gt > 0) {
      // Prefix-min corner >= r means every prefix record dominates r.
      if (kernel::GeqAll(sc.premin2.data() + (e_gt - 1) * dims, r, dims)) {
        st.n21 += e_gt;
        if (!st.Charge(1)) return true;
      } else {
        st.n21 += kernel::CountDominatingOneWay(r, sorted2, e_gt, dims);
        if (!st.Charge(e_gt)) return true;
      }
    }
    if (e_ge > e_gt) {
      kernel::KernelCounts c = kernel::CountBlock(
          r, 1, sorted2 + e_gt * dims, e_ge - e_gt, dims);
      st.n12 += c.n12;
      st.n21 += c.n21;
      if (!st.Charge(e_ge - e_gt)) return true;
    }
    if (e_ge < k2) {
      // r >= the suffix-max corner means r dominates every suffix record.
      if (kernel::GeqAll(r, sc.suffmax2.data() + e_ge * dims, dims)) {
        st.n12 += k2 - e_ge;
        if (!st.Charge(1)) return true;
      } else {
        st.n12 += kernel::CountDominatedOneWay(r, sorted2 + e_ge * dims,
                                               k2 - e_ge, dims);
        if (!st.Charge(k2 - e_ge)) return true;
      }
    }
    st.resolved += k2;
    if (use_stop_rule &&
        internal::TryResolveOutcome(st.n12, st.n21, st.resolved, st.total,
                                    thresholds, outcome)) {
      return true;
    }
  }
  return false;
}

// Builds the score-descending packed rows of one side. The full-group case
// reuses the group's lazily cached order (no per-call sort); an MBB
// residual subset is sorted per call.
void BuildSortedSide(const Group& g, const std::vector<uint32_t>* rest,
                     std::vector<double>* gathered,
                     std::vector<uint32_t>* order,
                     std::vector<double>* sorted_rows,
                     std::vector<double>* scores) {
  const size_t dims = g.dims();
  if (rest == nullptr) {
    const std::vector<uint32_t>& cached = g.score_order_desc();
    kernel::GatherRows(g.data().data(), cached.data(), cached.size(), dims,
                       sorted_rows);
    scores->resize(cached.size());
    for (size_t i = 0; i < cached.size(); ++i) {
      (*scores)[i] = kernel::RowScore(sorted_rows->data() + i * dims, dims);
    }
    return;
  }
  kernel::GatherRows(g.data().data(), rest->data(), rest->size(), dims,
                     gathered);
  kernel::SortByScoreDesc(gathered->data(), rest->size(), dims, order,
                          scores);
  kernel::GatherRows(gathered->data(), order->data(), order->size(), dims,
                     sorted_rows);
}

}  // namespace

PairOutcome ClassifyPair(const Group& g1, const Group& g2,
                         const GammaThresholds& thresholds,
                         const PairCompareOptions& options,
                         PairCompareStats* stats) {
  GALAXY_CHECK_EQ(g1.dims(), g2.dims());
  const uint64_t n1 = g1.size();
  const uint64_t n2 = g2.size();
  const uint64_t total = n1 * n2;
  if (stats != nullptr) stats->pairs_total = total;

  // An empty group neither dominates nor is dominated (Definition 3's
  // probability is undefined there); its MBB corners are ±infinity, so no
  // later step may touch them.
  if (total == 0) return PairOutcome::kIncomparable;

  ExecutionContext* exec = options.exec;
  if (exec != nullptr && !exec->Charge(0)) {
    if (stats != nullptr) stats->aborted = true;
    return PairOutcome::kIncomparable;
  }

  ScanState st;
  st.total = total;
  st.exec = exec;

  // Residual records needing pairwise scanning. Null means "the whole
  // group" — the kernels then read the group buffer in place, with no
  // index indirection and no per-pair allocation.
  std::vector<uint32_t> rest1;
  std::vector<uint32_t> rest2;
  const std::vector<uint32_t>* rest1_ptr = nullptr;
  const std::vector<uint32_t>* rest2_ptr = nullptr;

  if (options.use_mbb) {
    const Box& b1 = g1.mbb();
    const Box& b2 = g2.mbb();
    // Figure 9(b): a corner-only decision. If g2's min corner dominates
    // g1's max corner, every record of g2 dominates every record of g1.
    if (skyline::Dominates(b2.min, b1.max)) {
      if (stats != nullptr) {
        stats->mbb_strict_shortcut = true;
        stats->pairs_resolved_by_mbb = total;
      }
      return PairOutcome::kSecondDominatesStrongly;
    }
    if (skyline::Dominates(b1.min, b2.max)) {
      if (stats != nullptr) {
        stats->mbb_strict_shortcut = true;
        stats->pairs_resolved_by_mbb = total;
      }
      return PairOutcome::kFirstDominatesStrongly;
    }

    internal::MbbPreclassification pre = internal::PreclassifyWithMbb(g1, g2);
    st.n12 = pre.n12;
    st.n21 = pre.n21;
    st.resolved = pre.resolved;
    rest1 = std::move(pre.rest1);
    rest2 = std::move(pre.rest2);
    rest1_ptr = &rest1;
    rest2_ptr = &rest2;
    if (stats != nullptr) {
      stats->record_comparisons += 2 * (n1 + n2);  // corner tests
      stats->pairs_resolved_by_mbb = st.resolved;
      stats->records_preclassified =
          (n1 - rest1.size()) + (n2 - rest2.size());
    }
    if (exec != nullptr && !exec->Charge(2 * (n1 + n2))) {
      if (stats != nullptr) stats->aborted = true;
      return PairOutcome::kIncomparable;
    }
  }

  const size_t dims = g1.dims();
  const size_t k1 = rest1_ptr != nullptr ? rest1_ptr->size() : g1.size();
  const size_t k2 = rest2_ptr != nullptr ? rest2_ptr->size() : g2.size();
  const uint64_t residual_pairs = static_cast<uint64_t>(k1) * k2;

  PairOutcome outcome;
  if (options.use_stop_rule &&
      internal::TryResolveOutcome(st.n12, st.n21, st.resolved, total,
                                  thresholds, &outcome)) {
    if (stats != nullptr) stats->stopped_early = st.resolved < total;
    return outcome;
  }

  const KernelPolicy policy =
      ResolveKernelPolicy(options.kernel, dims, residual_pairs,
                          options.use_stop_rule, exec != nullptr);
  if (stats != nullptr) stats->kernel_used = policy;

  bool ended_early = false;
  if (residual_pairs > 0) {
    ScanScratch& sc = TlsScanScratch();
    switch (policy) {
      case KernelPolicy::kScalar:
        ended_early = ScanScalar(g1, g2, rest1_ptr, rest2_ptr,
                                 options.use_stop_rule, thresholds, st,
                                 &outcome);
        break;
      case KernelPolicy::kSorted: {
        BuildSortedSide(g1, rest1_ptr, &sc.rows1, &sc.order1, &sc.sorted1,
                        &sc.scores1);
        BuildSortedSide(g2, rest2_ptr, &sc.rows2, &sc.order2, &sc.sorted2,
                        &sc.scores2);
        ended_early = ScanSorted(sc.sorted1.data(), sc.scores1.data(), k1,
                                 sc.sorted2.data(), sc.scores2.data(), k2,
                                 dims, options.use_stop_rule, thresholds, st,
                                 sc, &outcome);
        break;
      }
      case KernelPolicy::kSweep2D: {
        const double* rows1 = g1.data().data();
        const double* rows2 = g2.data().data();
        if (rest1_ptr != nullptr) {
          kernel::GatherRows(rows1, rest1_ptr->data(), k1, dims, &sc.rows1);
          rows1 = sc.rows1.data();
        }
        if (rest2_ptr != nullptr) {
          kernel::GatherRows(rows2, rest2_ptr->data(), k2, dims, &sc.rows2);
          rows2 = sc.rows2.data();
        }
        kernel::KernelCounts c =
            kernel::CountPairsSweep2D(rows1, k1, rows2, k2, &sc.sweep);
        st.n12 += c.n12;
        st.n21 += c.n21;
        st.resolved += residual_pairs;
        // The sweep touches each record O(log n) times rather than each
        // pair once; account the linear passes, not k1*k2.
        st.comparisons += static_cast<uint64_t>(k1) + k2;
        break;
      }
      case KernelPolicy::kTiled:
      case KernelPolicy::kAuto: {  // kAuto resolved above; tiled fallback
        const double* rows1 = g1.data().data();
        const double* rows2 = g2.data().data();
        if (rest1_ptr != nullptr) {
          kernel::GatherRows(rows1, rest1_ptr->data(), k1, dims, &sc.rows1);
          rows1 = sc.rows1.data();
        }
        if (rest2_ptr != nullptr) {
          kernel::GatherRows(rows2, rest2_ptr->data(), k2, dims, &sc.rows2);
          rows2 = sc.rows2.data();
        }
        ended_early = ScanTiled(rows1, k1, rows2, k2, dims,
                                options.use_stop_rule, thresholds, st,
                                &outcome);
        break;
      }
    }
  }

  if (st.aborted) {
    if (stats != nullptr) {
      stats->record_comparisons += st.comparisons;
      stats->aborted = true;
    }
    return PairOutcome::kIncomparable;
  }
  st.FlushCharges();
  if (stats != nullptr) stats->record_comparisons += st.comparisons;
  if (ended_early) {
    if (stats != nullptr) stats->stopped_early = st.resolved < total;
    return outcome;
  }

  // Exhaustive path (stop rule disabled, or undecidable until the end —
  // the latter cannot happen since at resolution == total everything is
  // decided).
  const double gamma = thresholds.gamma;
  const double gamma_bar = thresholds.gamma_bar;
  const uint64_t n12 = st.n12;
  const uint64_t n21 = st.n21;
  bool first_strong =
      n12 == total ||
      static_cast<double>(n12) > gamma_bar * static_cast<double>(total);
  bool first_gamma =
      n12 == total ||
      static_cast<double>(n12) > gamma * static_cast<double>(total);
  bool second_strong =
      n21 == total ||
      static_cast<double>(n21) > gamma_bar * static_cast<double>(total);
  bool second_gamma =
      n21 == total ||
      static_cast<double>(n21) > gamma * static_cast<double>(total);
  return OutcomeFromPredicates(first_gamma, first_strong, second_gamma,
                               second_strong);
}

}  // namespace galaxy::core
