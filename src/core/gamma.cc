#include "core/gamma.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace galaxy::core {

GammaThresholds GammaThresholds::FromGamma(double gamma) {
  GALAXY_CHECK_GE(gamma, 0.5) << "gamma must be >= 0.5 for asymmetry";
  GALAXY_CHECK_LE(gamma, 1.0);
  GammaThresholds t;
  t.gamma = gamma;
  // Proposition 5's threshold 1 - sqrt(1-γ)/2 falls below γ itself once
  // γ > 3/4; "strong" domination must still imply plain γ-domination (the
  // algorithms exclude strongly dominated groups from the result), so the
  // effective strong threshold is clamped to at least γ. This keeps the
  // weak-transitivity premise (p > 1 - sqrt(1-γ)/2) intact for every γ.
  t.gamma_bar = std::max(gamma, 1.0 - std::sqrt(1.0 - gamma) / 2.0);
  return t;
}

GammaThresholds GammaThresholds::FromGammaProven(double gamma) {
  GALAXY_CHECK_GE(gamma, 0.5) << "gamma must be >= 0.5 for asymmetry";
  GALAXY_CHECK_LE(gamma, 1.0);
  GammaThresholds t;
  t.gamma = gamma;
  // Union bound over the domination-matrix product (DESIGN.md erratum 3):
  // with zero-fractions a, b in the R-S and S-T matrices, the product's
  // zero fraction is at most (sqrt(a) + sqrt(b))^2; premise zero-fractions
  // below (1-gamma)/4 each therefore force p(R≻T) > gamma.
  t.gamma_bar = (3.0 + gamma) / 4.0;
  return t;
}

uint64_t CountDominatedPairs(const Group& s, const Group& r) {
  GALAXY_CHECK_EQ(s.dims(), r.dims());
  uint64_t count = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    auto si = s.point(i);
    for (size_t j = 0; j < r.size(); ++j) {
      if (skyline::Dominates(si, r.point(j))) ++count;
    }
  }
  return count;
}

double DominationProbability(const Group& s, const Group& r) {
  uint64_t total = static_cast<uint64_t>(s.size()) * r.size();
  // Definition 3's probability is undefined over an empty group; 0/0 would
  // yield NaN here and poison every downstream comparison. An empty group
  // neither dominates nor is dominated.
  if (total == 0) return 0.0;
  return static_cast<double>(CountDominatedPairs(s, r)) /
         static_cast<double>(total);
}

bool GammaDominates(const Group& s, const Group& r, double gamma) {
  if (s.size() == 0 || r.size() == 0) return false;
  double p = DominationProbability(s, r);
  return p == 1.0 || p > gamma;
}

GammaDriftBounds StabilityBounds(double gamma, double epsilon) {
  GALAXY_CHECK_GE(epsilon, 0.0);
  GALAXY_CHECK_LT(epsilon, 1.0);
  GALAXY_CHECK_GE(gamma, 0.0);
  GALAXY_CHECK_LE(gamma, 1.0);
  GammaDriftBounds bounds;
  bounds.lower = std::max(0.0, (gamma - epsilon) / (1.0 - epsilon));
  bounds.upper = std::min(1.0, gamma / (1.0 - epsilon));
  return bounds;
}

const char* PairOutcomeToString(PairOutcome outcome) {
  switch (outcome) {
    case PairOutcome::kIncomparable:
      return "incomparable";
    case PairOutcome::kFirstDominates:
      return "first-dominates";
    case PairOutcome::kFirstDominatesStrongly:
      return "first-dominates-strongly";
    case PairOutcome::kSecondDominates:
      return "second-dominates";
    case PairOutcome::kSecondDominatesStrongly:
      return "second-dominates-strongly";
  }
  return "?";
}

namespace internal {

BoundDecision DecideDominance(uint64_t known, uint64_t resolved,
                              uint64_t total, double threshold) {
  if (total == 0) {
    // Empty pair space: without this guard `known == total` would claim
    // p == 1 for a pair involving an empty group.
    BoundDecision d;
    d.decided = true;
    d.value = false;
    return d;
  }
  uint64_t upper = known + (total - resolved);
  double bar = threshold * static_cast<double>(total);
  BoundDecision d;
  if (static_cast<double>(known) > bar || known == total) {
    d.decided = true;
    d.value = true;
  } else if (upper < total && !(static_cast<double>(upper) > bar)) {
    d.decided = true;
    d.value = false;
  } else if (resolved == total) {
    d.decided = true;
    d.value = (known == total) || (static_cast<double>(known) > bar);
  }
  return d;
}

MbbPreclassification PreclassifyWithMbb(const Group& g1, const Group& g2) {
  GALAXY_CHECK_GT(g1.size(), 0u);
  GALAXY_CHECK_GT(g2.size(), 0u);
  const Box& b1 = g1.mbb();
  const Box& b2 = g2.mbb();
  const uint64_t n1 = g1.size();
  const uint64_t n2 = g2.size();

  // Figure 9(c): records of one group falling below the other group's min
  // corner are dominated by the entire other group ("area A"); records
  // above the other group's max corner dominate the entire other group
  // ("area C"). Count those pairs analytically and scan only the rest.
  MbbPreclassification pre;
  uint64_t a2 = 0;  // g1 records dominated by all of g2 (below b2.min)
  uint64_t c1 = 0;  // g1 records dominating all of g2 (above b2.max)
  pre.rest1.reserve(g1.size());
  for (uint32_t i = 0; i < g1.size(); ++i) {
    auto r = g1.point(i);
    if (skyline::Dominates(b2.min, r)) {
      ++a2;
    } else if (skyline::Dominates(r, b2.max)) {
      ++c1;
    } else {
      pre.rest1.push_back(i);
    }
  }
  uint64_t a1 = 0;  // g2 records dominated by all of g1
  uint64_t c2 = 0;  // g2 records dominating all of g1
  pre.rest2.reserve(g2.size());
  for (uint32_t j = 0; j < g2.size(); ++j) {
    auto s = g2.point(j);
    if (skyline::Dominates(b1.min, s)) {
      ++a1;
    } else if (skyline::Dominates(s, b1.max)) {
      ++c2;
    } else {
      pre.rest2.push_back(j);
    }
  }
  // Every pair touching a pre-classified record is decided:
  //   r ≻ s holds for (any r, s in A1) and (r in C1, s not in A1);
  //   s ≻ r holds for (r in A2, any s) and (s in C2, r not in A2);
  //   all other flagged combinations are non-dominating in both
  //   directions.
  pre.n12 = a1 * n1 + c1 * (n2 - a1);
  pre.n21 = a2 * n2 + c2 * (n1 - a2);
  pre.resolved = n1 * n2 -
                 static_cast<uint64_t>(pre.rest1.size()) * pre.rest2.size();
  return pre;
}

bool TryResolveOutcome(uint64_t n12, uint64_t n21, uint64_t resolved,
                       uint64_t total, const GammaThresholds& thresholds,
                       PairOutcome* outcome) {
  BoundDecision f_strong =
      DecideDominance(n12, resolved, total, thresholds.gamma_bar);
  BoundDecision f_gamma =
      DecideDominance(n12, resolved, total, thresholds.gamma);
  BoundDecision s_strong =
      DecideDominance(n21, resolved, total, thresholds.gamma_bar);
  BoundDecision s_gamma =
      DecideDominance(n21, resolved, total, thresholds.gamma);
  // Shortcut exits mirroring the stopping rule of Section 3.3: a decided
  // strong domination ends the comparison; a decided weak domination ends
  // it once strong domination is excluded; four decided negatives mean
  // incomparability.
  if (f_strong.decided && f_strong.value) {
    *outcome = PairOutcome::kFirstDominatesStrongly;
    return true;
  }
  if (s_strong.decided && s_strong.value) {
    *outcome = PairOutcome::kSecondDominatesStrongly;
    return true;
  }
  if (f_gamma.decided && f_gamma.value && f_strong.decided) {
    *outcome = PairOutcome::kFirstDominates;
    return true;
  }
  if (s_gamma.decided && s_gamma.value && s_strong.decided) {
    *outcome = PairOutcome::kSecondDominates;
    return true;
  }
  if (f_gamma.decided && !f_gamma.value && s_gamma.decided &&
      !s_gamma.value) {
    *outcome = PairOutcome::kIncomparable;
    return true;
  }
  return false;
}

}  // namespace internal

namespace {

PairOutcome OutcomeFromPredicates(bool first_gamma, bool first_strong,
                                  bool second_gamma, bool second_strong) {
  if (first_strong) return PairOutcome::kFirstDominatesStrongly;
  if (first_gamma) return PairOutcome::kFirstDominates;
  if (second_strong) return PairOutcome::kSecondDominatesStrongly;
  if (second_gamma) return PairOutcome::kSecondDominates;
  return PairOutcome::kIncomparable;
}

}  // namespace

PairOutcome ClassifyPair(const Group& g1, const Group& g2,
                         const GammaThresholds& thresholds,
                         const PairCompareOptions& options,
                         PairCompareStats* stats) {
  GALAXY_CHECK_EQ(g1.dims(), g2.dims());
  const uint64_t n1 = g1.size();
  const uint64_t n2 = g2.size();
  const uint64_t total = n1 * n2;
  if (stats != nullptr) stats->pairs_total = total;

  // An empty group neither dominates nor is dominated (Definition 3's
  // probability is undefined there); its MBB corners are ±infinity, so no
  // later step may touch them.
  if (total == 0) return PairOutcome::kIncomparable;

  ExecutionContext* exec = options.exec;
  if (exec != nullptr && !exec->Charge(0)) {
    if (stats != nullptr) stats->aborted = true;
    return PairOutcome::kIncomparable;
  }

  uint64_t n12 = 0;  // pairs (r in g1, s in g2) with r ≻ s
  uint64_t n21 = 0;  // pairs with s ≻ r
  uint64_t resolved = 0;

  // Residual records needing pairwise scanning (all, unless MBB pruning
  // pre-classifies some).
  std::vector<uint32_t> rest1;
  std::vector<uint32_t> rest2;

  if (options.use_mbb) {
    const Box& b1 = g1.mbb();
    const Box& b2 = g2.mbb();
    // Figure 9(b): a corner-only decision. If g2's min corner dominates
    // g1's max corner, every record of g2 dominates every record of g1.
    if (skyline::Dominates(b2.min, b1.max)) {
      if (stats != nullptr) {
        stats->mbb_strict_shortcut = true;
        stats->pairs_resolved_by_mbb = total;
      }
      return PairOutcome::kSecondDominatesStrongly;
    }
    if (skyline::Dominates(b1.min, b2.max)) {
      if (stats != nullptr) {
        stats->mbb_strict_shortcut = true;
        stats->pairs_resolved_by_mbb = total;
      }
      return PairOutcome::kFirstDominatesStrongly;
    }

    internal::MbbPreclassification pre = internal::PreclassifyWithMbb(g1, g2);
    n12 = pre.n12;
    n21 = pre.n21;
    resolved = pre.resolved;
    rest1 = std::move(pre.rest1);
    rest2 = std::move(pre.rest2);
    if (stats != nullptr) {
      stats->record_comparisons += 2 * (n1 + n2);  // corner tests
      stats->pairs_resolved_by_mbb = resolved;
    }
    if (exec != nullptr && !exec->Charge(2 * (n1 + n2))) {
      if (stats != nullptr) stats->aborted = true;
      return PairOutcome::kIncomparable;
    }
  } else {
    rest1.resize(g1.size());
    rest2.resize(g2.size());
    for (uint32_t i = 0; i < g1.size(); ++i) rest1[i] = i;
    for (uint32_t j = 0; j < g2.size(); ++j) rest2[j] = j;
  }

  const double gamma = thresholds.gamma;
  const double gamma_bar = thresholds.gamma_bar;

  auto outcome_if_decided = [&](PairOutcome* out) {
    return internal::TryResolveOutcome(n12, n21, resolved, total, thresholds,
                                       out);
  };

  PairOutcome outcome;
  if (options.use_stop_rule && outcome_if_decided(&outcome)) {
    if (stats != nullptr) stats->stopped_early = resolved < total;
    return outcome;
  }

  // The decidability check costs about as much as a record comparison, so
  // it runs once per inner row (and every kCheckStride pairs inside very
  // long rows) rather than per pair.
  constexpr uint64_t kCheckStride = 1024;
  uint64_t next_check = resolved + kCheckStride;
  // Comparisons accumulated locally and charged to the control plane in
  // batches, keeping the bounded path contention-free and the unbounded
  // path (exec == nullptr) down to one branch per comparison.
  uint64_t uncharged = 0;
  auto flush_charges = [&]() {
    if (exec != nullptr && uncharged != 0) {
      exec->Charge(uncharged);
      uncharged = 0;
    }
  };
  for (uint32_t i : rest1) {
    auto r = g1.point(i);
    for (uint32_t j : rest2) {
      if (stats != nullptr) ++stats->record_comparisons;
      skyline::DominanceResult cmp = skyline::CompareDominance(r, g2.point(j));
      if (cmp == skyline::DominanceResult::kLeftDominates) {
        ++n12;
      } else if (cmp == skyline::DominanceResult::kRightDominates) {
        ++n21;
      }
      ++resolved;
      if (exec != nullptr &&
          ++uncharged >= ExecutionContext::kChargeBatch) {
        if (!exec->Charge(uncharged)) {
          if (stats != nullptr) stats->aborted = true;
          return PairOutcome::kIncomparable;
        }
        uncharged = 0;
      }
      if (options.use_stop_rule && resolved >= next_check) {
        next_check = resolved + kCheckStride;
        if (outcome_if_decided(&outcome)) {
          if (stats != nullptr) stats->stopped_early = resolved < total;
          flush_charges();
          return outcome;
        }
      }
    }
    if (options.use_stop_rule && outcome_if_decided(&outcome)) {
      if (stats != nullptr) stats->stopped_early = resolved < total;
      flush_charges();
      return outcome;
    }
  }
  flush_charges();

  // Exhaustive path (stop rule disabled, or undecidable until the end —
  // the latter cannot happen since at resolution == total everything is
  // decided).
  bool first_strong =
      n12 == total ||
      static_cast<double>(n12) > gamma_bar * static_cast<double>(total);
  bool first_gamma =
      n12 == total ||
      static_cast<double>(n12) > gamma * static_cast<double>(total);
  bool second_strong =
      n21 == total ||
      static_cast<double>(n21) > gamma_bar * static_cast<double>(total);
  bool second_gamma =
      n21 == total ||
      static_cast<double>(n21) > gamma * static_cast<double>(total);
  return OutcomeFromPredicates(first_gamma, first_strong, second_gamma,
                               second_strong);
}

}  // namespace galaxy::core
