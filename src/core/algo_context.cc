#include "core/algo_context.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace galaxy::core::internal {

AlgoContext::AlgoContext(const GroupedDataset& dataset,
                         const AggregateSkylineOptions& options,
                         AggregateSkylineStats* stats)
    : dataset_(&dataset),
      options_(&options),
      thresholds_(options.use_proven_gamma_bar
                      ? GammaThresholds::FromGammaProven(options.gamma)
                      : GammaThresholds::FromGamma(options.gamma)),
      dominated_(dataset.num_groups(), 0),
      strongly_dominated_(dataset.num_groups(), 0),
      stats_(stats) {
  pair_options_.use_stop_rule = options.use_stop_rule;
  pair_options_.use_mbb =
      options.use_mbb || options.algorithm == Algorithm::kIndexedBbox;
  pair_options_.exec = options.exec;
  pair_options_.kernel = options.kernel;
  if (options.algorithm == Algorithm::kBruteForce) {
    // The reference mode does every record comparison unconditionally —
    // but it still honors the control plane.
    pair_options_.use_stop_rule = false;
    pair_options_.use_mbb = false;
  }
}

PairOutcome AlgoContext::Compare(uint32_t id1, uint32_t id2) {
  PairCompareStats pair_stats;
  PairOutcome outcome =
      ClassifyPair(dataset_->group(id1), dataset_->group(id2), thresholds_,
                   pair_options_, &pair_stats);
  if (stats_ != nullptr) {
    stats_->record_comparisons += pair_stats.record_comparisons;
    stats_->records_preclassified += pair_stats.records_preclassified;
    if (pair_stats.mbb_strict_shortcut) ++stats_->mbb_shortcuts;
    if (pair_stats.stopped_early) ++stats_->stopped_early;
  }
  // An aborted classification decided nothing about the pair; recording
  // its kIncomparable would be a false mark of knowledge, and counting it
  // in group_pairs_classified would inflate the decided-pair tally.
  if (pair_stats.aborted) return outcome;
  if (stats_ != nullptr) ++stats_->group_pairs_classified;
  switch (outcome) {
    case PairOutcome::kFirstDominatesStrongly:
      strongly_dominated_[id2] = 1;
      dominated_[id2] = 1;
      break;
    case PairOutcome::kFirstDominates:
      dominated_[id2] = 1;
      break;
    case PairOutcome::kSecondDominatesStrongly:
      strongly_dominated_[id1] = 1;
      dominated_[id1] = 1;
      break;
    case PairOutcome::kSecondDominates:
      dominated_[id1] = 1;
      break;
    case PairOutcome::kIncomparable:
      break;
  }
  return outcome;
}

std::vector<uint32_t> AlgoContext::Skyline() const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < dominated_.size(); ++i) {
    if (dominated_[i] == 0) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> OrderGroups(const GroupedDataset& dataset,
                                  GroupOrdering ordering) {
  std::vector<uint32_t> order(dataset.num_groups());
  std::iota(order.begin(), order.end(), uint32_t{0});

  // Coordinate (not distance) sum of the MBB corners: on the paper's
  // [0, 1]^d data this equals the corner-distance sum of Algorithm 4, and
  // unlike an absolute-value distance it stays monotone when MIN attributes
  // have been negated. Empty groups sort last: their empty-box corners are
  // ±infinity and would otherwise sum to NaN, breaking the comparator's
  // strict weak ordering.
  auto corner_key = [&](uint32_t id) {
    const Group& g = dataset.group(id);
    if (g.size() == 0) return -std::numeric_limits<double>::infinity();
    const Box& b = g.mbb();
    double s = 0.0;
    for (size_t i = 0; i < b.dims(); ++i) s += b.min[i] + b.max[i];
    return s;
  };

  switch (ordering) {
    case GroupOrdering::kCornerDistance:
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return corner_key(a) > corner_key(b);
                       });
      break;
    case GroupOrdering::kSmallestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return dataset.group(a).size() <
                                dataset.group(b).size();
                       });
      break;
    case GroupOrdering::kSmallestFirstThenCorner:
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         size_t sa = dataset.group(a).size();
                         size_t sb = dataset.group(b).size();
                         if (sa != sb) return sa < sb;
                         return corner_key(a) > corner_key(b);
                       });
      break;
  }
  return order;
}

}  // namespace galaxy::core::internal
