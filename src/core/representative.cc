#include "core/representative.h"

#include <algorithm>

#include "core/aggregate_skyline.h"
#include "core/gamma.h"

namespace galaxy::core {

RepresentativeResult SelectRepresentatives(const GroupedDataset& dataset,
                                           size_t k, double gamma) {
  AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = Algorithm::kBruteForce;
  AggregateSkylineResult skyline = ComputeAggregateSkyline(dataset, options);

  std::vector<uint32_t> dominated;
  for (uint32_t g = 0; g < dataset.num_groups(); ++g) {
    if (!skyline.Contains(g)) dominated.push_back(g);
  }

  RepresentativeResult result;
  result.dominated_total = dominated.size();

  // Coverage sets: which dominated groups each skyline group γ-dominates.
  std::vector<std::vector<uint32_t>> covers(skyline.skyline.size());
  for (size_t s = 0; s < skyline.skyline.size(); ++s) {
    const Group& sky_group = dataset.group(skyline.skyline[s]);
    for (uint32_t d : dominated) {
      if (GammaDominates(sky_group, dataset.group(d), gamma)) {
        covers[s].push_back(d);
      }
    }
  }

  // Greedy max-coverage.
  std::vector<uint8_t> picked(skyline.skyline.size(), 0);
  std::vector<uint8_t> covered(dataset.num_groups(), 0);
  size_t budget = std::min(k, skyline.skyline.size());
  for (size_t round = 0; round < budget; ++round) {
    size_t best = skyline.skyline.size();
    size_t best_gain = 0;
    for (size_t s = 0; s < skyline.skyline.size(); ++s) {
      if (picked[s] != 0) continue;
      size_t gain = 0;
      for (uint32_t d : covers[s]) {
        if (covered[d] == 0) ++gain;
      }
      if (best == skyline.skyline.size() || gain > best_gain) {
        best = s;
        best_gain = gain;
      }
    }
    if (best == skyline.skyline.size()) break;
    picked[best] = 1;
    for (uint32_t d : covers[best]) {
      if (covered[d] == 0) {
        covered[d] = 1;
        ++result.covered;
      }
    }
    result.representatives.push_back(
        {skyline.skyline[best], best_gain});
  }
  return result;
}

}  // namespace galaxy::core
