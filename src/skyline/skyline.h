#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "relation/table.h"
#include "skyline/dominance.h"

namespace galaxy::skyline {

/// Record-skyline algorithms offered by Compute().
enum class Algorithm {
  /// Block-Nested-Loop (Börzsönyi et al. 2001): maintains a window of
  /// incomparable candidates and streams the input against it.
  kBnl,
  /// Sort-Filter-Skyline (Chomicki et al. 2003): presorts by a monotone
  /// score so every accepted record is final; the window only grows.
  kSfs,
  /// Divide & Conquer (Börzsönyi et al. 2001): splits on the median of the
  /// first dimension, solves recursively, and removes the low half's
  /// points dominated by the high half's skyline.
  kDivideConquer,
};

/// Counters describing the work done by a skyline computation.
struct SkylineStats {
  uint64_t dominance_tests = 0;
};

/// Computes the skyline of `points`: the indices (in input order) of points
/// not dominated by any other point under `prefs`. Duplicate points are all
/// retained (none dominates the other). Points must share one dimension,
/// equal to prefs.size().
std::vector<size_t> Compute(const std::vector<std::vector<double>>& points,
                            const PreferenceList& prefs,
                            Algorithm algorithm = Algorithm::kSfs,
                            SkylineStats* stats = nullptr);

/// Convenience wrapper: extracts `columns` from `table` (all treated as
/// numeric), computes the skyline with the given per-column preferences, and
/// returns the qualifying row indexes in ascending order.
Result<std::vector<size_t>> ComputeOnTable(
    const Table& table, const std::vector<std::string>& columns,
    const PreferenceList& prefs, Algorithm algorithm = Algorithm::kSfs);

}  // namespace galaxy::skyline

