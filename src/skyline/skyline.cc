#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace galaxy::skyline {

namespace {

// Block-Nested-Loop: keep a window of mutually incomparable candidates.
// A new point is discarded if dominated by a window entry; window entries
// dominated by the new point are evicted. Equal points coexist.
std::vector<size_t> ComputeBnl(const std::vector<std::vector<double>>& points,
                               const PreferenceList& prefs,
                               SkylineStats* stats) {
  std::vector<size_t> window;
  for (size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      if (stats != nullptr) ++stats->dominance_tests;
      DominanceResult r =
          CompareDominance(points[window[w]], points[i], prefs);
      if (r == DominanceResult::kLeftDominates) {
        dominated = true;
        // Everything not yet inspected stays in the window.
        for (size_t rest = w; rest < window.size(); ++rest) {
          window[keep++] = window[rest];
        }
        break;
      }
      if (r != DominanceResult::kRightDominates) {
        window[keep++] = window[w];  // incomparable or equal: keep
      }
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

// Sort-Filter-Skyline: process points by decreasing monotone score. A point
// can only be dominated by an earlier one, so accepted points are final.
std::vector<size_t> ComputeSfs(const std::vector<std::vector<double>>& points,
                               const PreferenceList& prefs,
                               SkylineStats* stats) {
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> score(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    score[i] = MonotoneScore(points[i], prefs);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return score[a] > score[b];
  });
  std::vector<size_t> result;
  for (size_t idx : order) {
    bool dominated = false;
    for (size_t s : result) {
      if (stats != nullptr) ++stats->dominance_tests;
      if (Dominates(points[s], points[idx], prefs)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(idx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

// Divide & Conquer: split on the median of the first attribute. The "high"
// half (strictly better on attribute 0) cannot be dominated by the "low"
// half, so the merge only filters low-half skyline points against the
// high-half skyline.
class DivideConquer {
 public:
  DivideConquer(const std::vector<std::vector<double>>& points,
                const PreferenceList& prefs, SkylineStats* stats)
      : points_(points), prefs_(prefs), stats_(stats) {}

  std::vector<size_t> Run() {
    std::vector<size_t> indices(points_.size());
    std::iota(indices.begin(), indices.end(), size_t{0});
    std::vector<size_t> result = Solve(std::move(indices));
    std::sort(result.begin(), result.end());
    return result;
  }

 private:
  static constexpr size_t kBaseCase = 64;

  double Oriented(size_t idx, size_t dim) const {
    double v = points_[idx][dim];
    return prefs_[dim] == Preference::kMax ? v : -v;
  }

  // BNL on a subset, for base cases and degenerate partitions.
  std::vector<size_t> SolveSmall(const std::vector<size_t>& indices) {
    std::vector<size_t> window;
    for (size_t idx : indices) {
      bool dominated = false;
      size_t keep = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        if (stats_ != nullptr) ++stats_->dominance_tests;
        DominanceResult r =
            CompareDominance(points_[window[w]], points_[idx], prefs_);
        if (r == DominanceResult::kLeftDominates) {
          dominated = true;
          for (size_t rest = w; rest < window.size(); ++rest) {
            window[keep++] = window[rest];
          }
          break;
        }
        if (r != DominanceResult::kRightDominates) {
          window[keep++] = window[w];
        }
      }
      window.resize(keep);
      if (!dominated) window.push_back(idx);
    }
    return window;
  }

  std::vector<size_t> Solve(std::vector<size_t> indices) {
    if (indices.size() <= kBaseCase) return SolveSmall(indices);
    // Median of the oriented first attribute.
    std::vector<size_t> by_dim0 = indices;
    auto mid = by_dim0.begin() + static_cast<long>(by_dim0.size() / 2);
    std::nth_element(by_dim0.begin(), mid, by_dim0.end(),
                     [&](size_t a, size_t b) {
                       return Oriented(a, 0) < Oriented(b, 0);
                     });
    double median = Oriented(*mid, 0);

    std::vector<size_t> low;
    std::vector<size_t> high;
    for (size_t idx : indices) {
      (Oriented(idx, 0) > median ? high : low).push_back(idx);
    }
    if (high.empty() || low.empty()) {
      // Degenerate split (many ties on attribute 0): fall back.
      return SolveSmall(indices);
    }
    std::vector<size_t> high_sky = Solve(std::move(high));
    std::vector<size_t> low_sky = Solve(std::move(low));

    // Merge: low-half skyline points survive unless some high-half skyline
    // point dominates them; high-half points are never dominated by low
    // ones (strictly worse first attribute).
    std::vector<size_t> result = high_sky;
    for (size_t p : low_sky) {
      bool dominated = false;
      for (size_t q : high_sky) {
        if (stats_ != nullptr) ++stats_->dominance_tests;
        if (Dominates(points_[q], points_[p], prefs_)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.push_back(p);
    }
    return result;
  }

  const std::vector<std::vector<double>>& points_;
  const PreferenceList& prefs_;
  SkylineStats* stats_;
};

}  // namespace

std::vector<size_t> Compute(const std::vector<std::vector<double>>& points,
                            const PreferenceList& prefs, Algorithm algorithm,
                            SkylineStats* stats) {
  for (const auto& p : points) {
    GALAXY_CHECK_EQ(p.size(), prefs.size());
  }
  switch (algorithm) {
    case Algorithm::kBnl:
      return ComputeBnl(points, prefs, stats);
    case Algorithm::kSfs:
      return ComputeSfs(points, prefs, stats);
    case Algorithm::kDivideConquer:
      return DivideConquer(points, prefs, stats).Run();
  }
  return {};
}

Result<std::vector<size_t>> ComputeOnTable(
    const Table& table, const std::vector<std::string>& columns,
    const PreferenceList& prefs, Algorithm algorithm) {
  if (columns.size() != prefs.size()) {
    return Status::InvalidArgument(
        "number of skyline columns does not match number of preferences");
  }
  GALAXY_ASSIGN_OR_RETURN(std::vector<std::vector<double>> points,
                          table.ExtractNumeric(columns));
  return Compute(points, prefs, algorithm);
}

}  // namespace galaxy::skyline
