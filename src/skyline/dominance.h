#pragma once

#include <span>
#include <vector>

#include "common/geometry.h"

namespace galaxy::skyline {

/// Per-attribute preference direction. The paper assumes MAX everywhere; the
/// library supports both, mapping MIN attributes by sign flip inside the
/// predicates.
enum class Preference {
  kMax,
  kMin,
};

/// A list of per-dimension preferences; size must equal the point dimension.
using PreferenceList = std::vector<Preference>;

/// Returns a PreferenceList of `dims` kMax entries (the paper's default).
PreferenceList AllMax(size_t dims);

/// Pairwise dominance comparison outcomes.
enum class DominanceResult {
  kLeftDominates,
  kRightDominates,
  kEqual,         ///< identical on every attribute
  kIncomparable,  ///< each is strictly better somewhere
};

/// Pareto dominance (Definition 1): `a` dominates `b` iff a is at least as
/// good on every attribute and strictly better on at least one.
bool Dominates(std::span<const double> a, std::span<const double> b,
               const PreferenceList& prefs);

/// Convenience overload with all-MAX preferences.
bool Dominates(std::span<const double> a, std::span<const double> b);

/// Single-pass classification of a pair (cheaper than two Dominates calls).
DominanceResult CompareDominance(std::span<const double> a,
                                 std::span<const double> b,
                                 const PreferenceList& prefs);

/// Allocation-free overload with all-MAX preferences (the hot path of the
/// aggregate-skyline pair comparisons, whose inputs are MAX-oriented).
DominanceResult CompareDominance(std::span<const double> a,
                                 std::span<const double> b);

/// The "goodness" of a point under the preferences: the sum of attribute
/// values with MIN attributes negated. Monotone in every preference
/// direction, so sorting by decreasing Entropy is a valid SFS topological
/// order: no point can dominate one with a strictly larger score.
double MonotoneScore(std::span<const double> p, const PreferenceList& prefs);

}  // namespace galaxy::skyline

