#include "skyline/dominance.h"

#include "common/logging.h"

namespace galaxy::skyline {

PreferenceList AllMax(size_t dims) {
  return PreferenceList(dims, Preference::kMax);
}

namespace {

// Value of attribute i normalized so that larger is always better.
inline double Oriented(double v, Preference p) {
  return p == Preference::kMax ? v : -v;
}

}  // namespace

bool Dominates(std::span<const double> a, std::span<const double> b,
               const PreferenceList& prefs) {
  GALAXY_DCHECK(a.size() == b.size());
  GALAXY_DCHECK(a.size() == prefs.size());
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    double ai = Oriented(a[i], prefs[i]);
    double bi = Oriented(b[i], prefs[i]);
    if (ai < bi) return false;
    if (ai > bi) strictly_better = true;
  }
  return strictly_better;
}

bool Dominates(std::span<const double> a, std::span<const double> b) {
  GALAXY_DCHECK(a.size() == b.size());
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better = true;
  }
  return strictly_better;
}

DominanceResult CompareDominance(std::span<const double> a,
                                 std::span<const double> b,
                                 const PreferenceList& prefs) {
  GALAXY_DCHECK(a.size() == b.size());
  GALAXY_DCHECK(a.size() == prefs.size());
  bool a_better = false;
  bool b_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    double ai = Oriented(a[i], prefs[i]);
    double bi = Oriented(b[i], prefs[i]);
    if (ai > bi) {
      a_better = true;
    } else if (bi > ai) {
      b_better = true;
    }
    if (a_better && b_better) return DominanceResult::kIncomparable;
  }
  if (a_better) return DominanceResult::kLeftDominates;
  if (b_better) return DominanceResult::kRightDominates;
  return DominanceResult::kEqual;
}

DominanceResult CompareDominance(std::span<const double> a,
                                 std::span<const double> b) {
  GALAXY_DCHECK(a.size() == b.size());
  bool a_better = false;
  bool b_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) {
      a_better = true;
    } else if (b[i] > a[i]) {
      b_better = true;
    }
    if (a_better && b_better) return DominanceResult::kIncomparable;
  }
  if (a_better) return DominanceResult::kLeftDominates;
  if (b_better) return DominanceResult::kRightDominates;
  return DominanceResult::kEqual;
}

double MonotoneScore(std::span<const double> p, const PreferenceList& prefs) {
  GALAXY_DCHECK(p.size() == prefs.size());
  double s = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    s += Oriented(p[i], prefs[i]);
  }
  return s;
}

}  // namespace galaxy::skyline
