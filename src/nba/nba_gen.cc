#include "nba/nba_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace galaxy::nba {

namespace {

// Position-dependent per-game stat profiles at ability 1.0 (superstar
// level); an average player scales these down. Order matches StatColumns().
struct StatProfile {
  double points, rebounds, assists, steals, blocks, field_goals, free_throws,
      three_points;
};

constexpr StatProfile kGuardProfile = {28.0, 5.0, 10.5, 2.4, 0.5,
                                       9.5,  6.5, 2.8};
constexpr StatProfile kForwardProfile = {27.0, 10.0, 5.0, 1.6, 1.5,
                                         10.0, 6.0,  1.4};
constexpr StatProfile kCenterProfile = {24.0, 13.5, 3.0, 0.9, 3.0,
                                        9.8,  5.5,  0.2};

const StatProfile& ProfileFor(const std::string& position) {
  if (position == "G") return kGuardProfile;
  if (position == "F") return kForwardProfile;
  return kCenterProfile;
}

// Career arc: rises to a mid-career peak and declines.
double CareerMultiplier(int season_index, int career_length) {
  if (career_length <= 1) return 1.0;
  double t = static_cast<double>(season_index) /
             static_cast<double>(career_length - 1);
  // Parabola peaking at t = 0.45 with value 1, endpoints ~0.7.
  double d = t - 0.45;
  return std::max(0.4, 1.0 - 0.9 * d * d / 0.3025);
}

// League-wide three-point volume: sparse in the early 1980s, mainstream by
// the 2000s.
double ThreePointEra(int64_t year) {
  if (year < 1980) return 0.1;
  double t = std::min(1.0, static_cast<double>(year - 1980) / 25.0);
  return 0.15 + 0.85 * t;
}

std::string TeamName(size_t index) {
  static const char* kCities[] = {
      "ATL", "BOS", "BKN", "CHA", "CHI", "CLE", "DAL", "DEN", "DET", "GSW",
      "HOU", "IND", "LAC", "LAL", "MEM", "MIA", "MIL", "MIN", "NOP", "NYK",
      "OKC", "ORL", "PHI", "PHX", "POR", "SAC", "SAS", "TOR", "UTA", "WAS"};
  constexpr size_t kNumCities = sizeof(kCities) / sizeof(kCities[0]);
  if (index < kNumCities) return kCities[index];
  return "T" + std::to_string(index);
}

std::string PlayerName(size_t index, Rng& rng) {
  static const char* kFirst[] = {"Alex",  "Chris", "Jordan", "Sam",   "Tony",
                                 "Marc",  "Kevin", "James",  "Earl",  "Magic",
                                 "Larry", "Tim",   "Steve",  "Ray",   "Paul",
                                 "Vince", "Glen",  "Reggie", "Karl",  "John"};
  static const char* kLast[] = {
      "Walker", "Johnson", "Smith",   "Brown",  "Davis",  "Miller", "Wilson",
      "Moore",  "Taylor",  "Thomas",  "Jackson", "White",  "Harris", "Martin",
      "Green",  "Hill",    "Baker",   "Carter",  "Parker", "Ellis"};
  size_t f = static_cast<size_t>(rng.UniformInt(0, 19));
  size_t l = static_cast<size_t>(rng.UniformInt(0, 19));
  // The numeric suffix keeps names unique across the league history.
  return std::string(kFirst[f]) + " " + kLast[l] + " #" +
         std::to_string(index);
}

}  // namespace

const std::vector<std::string>& StatColumns() {
  static const std::vector<std::string> kColumns{
      "pts", "reb", "ast", "stl", "blk", "fg", "ft", "three"};
  return kColumns;
}

std::vector<PlayerSeason> GenerateLeagueHistory(const NbaConfig& config) {
  GALAXY_CHECK_GT(config.target_records, 0u);
  GALAXY_CHECK_LE(config.first_year, config.last_year);
  Rng rng(config.seed, /*stream=*/23);

  std::vector<PlayerSeason> out;
  out.reserve(config.target_records);
  size_t player_index = 0;
  const int64_t num_years = config.last_year - config.first_year + 1;

  while (out.size() < config.target_records) {
    ++player_index;
    std::string name = PlayerName(player_index, rng);

    // Position: guards are most common, centers least.
    double pos_draw = rng.NextDouble();
    std::string position = pos_draw < 0.45 ? "G" : (pos_draw < 0.8 ? "F" : "C");
    const StatProfile& profile = ProfileFor(position);

    // Latent ability in (0, 1]: most players are role players, a few are
    // stars (squaring a uniform skews toward the low end).
    double u = rng.NextDouble();
    double ability = 0.15 + 0.85 * u * u;

    // Career span.
    int career_length = 1 + static_cast<int>(rng.Exponential(0.22));
    career_length = std::min(career_length, 18);
    int64_t debut =
        config.first_year + rng.UniformInt(0, num_years - 1);

    size_t team = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(config.num_teams) - 1));

    for (int s = 0; s < career_length; ++s) {
      int64_t year = debut + s;
      if (year > config.last_year) break;
      if (out.size() >= config.target_records) break;
      // Occasional trade.
      if (s > 0 && rng.Bernoulli(0.12)) {
        team = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(config.num_teams) - 1));
      }
      double season_level =
          ability * CareerMultiplier(s, career_length) *
          std::clamp(rng.Gaussian(1.0, 0.1), 0.6, 1.4);

      auto stat = [&](double peak, double noise_frac) {
        double v = peak * season_level *
                   std::clamp(rng.Gaussian(1.0, noise_frac), 0.3, 1.8);
        return std::max(0.0, v);
      };

      PlayerSeason ps;
      ps.player = name;
      ps.team = TeamName(team);
      ps.year = year;
      ps.position = position;
      ps.points = stat(profile.points, 0.15);
      ps.rebounds = stat(profile.rebounds, 0.2);
      ps.assists = stat(profile.assists, 0.2);
      ps.steals = stat(profile.steals, 0.25);
      ps.blocks = stat(profile.blocks, 0.3);
      // Field goals track points (roughly 40% of points come from 2P FGs).
      ps.field_goals =
          std::max(0.0, ps.points * 0.36 *
                            std::clamp(rng.Gaussian(1.0, 0.08), 0.7, 1.3));
      ps.free_throws = stat(profile.free_throws, 0.25);
      ps.three_points = stat(profile.three_points, 0.35) * ThreePointEra(year);
      out.push_back(std::move(ps));
    }
  }
  return out;
}

Table ToTable(const std::vector<PlayerSeason>& seasons) {
  std::vector<ColumnDef> columns = {{"player", ValueType::kString},
                                    {"team", ValueType::kString},
                                    {"year", ValueType::kInt64},
                                    {"pos", ValueType::kString}};
  for (const std::string& stat : StatColumns()) {
    columns.push_back({stat, ValueType::kDouble});
  }
  TableBuilder builder{Schema(std::move(columns))};
  for (const PlayerSeason& ps : seasons) {
    builder.AddRow({ps.player, ps.team, ps.year, ps.position, ps.points,
                    ps.rebounds, ps.assists, ps.steals, ps.blocks,
                    ps.field_goals, ps.free_throws, ps.three_points});
  }
  return builder.Build();
}

}  // namespace galaxy::nba
