#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relation/table.h"

namespace galaxy::nba {

/// One player-season stat line (per-game averages), mirroring the schema of
/// the paper's real dataset (databasebasketball.com: all players and
/// regular seasons since 1979, eight skyline attributes).
struct PlayerSeason {
  std::string player;
  std::string team;
  int64_t year = 0;
  std::string position;  // "G", "F" or "C"
  double points = 0;
  double rebounds = 0;
  double assists = 0;
  double steals = 0;
  double blocks = 0;
  double field_goals = 0;  // made per game
  double free_throws = 0;  // made per game
  double three_points = 0; // made per game
};

/// Configuration of the synthetic NBA workload. Defaults approximate the
/// paper's dataset: ~15 000 player-season records covering 1979-2012.
struct NbaConfig {
  size_t target_records = 15000;
  int64_t first_year = 1979;
  int64_t last_year = 2012;
  size_t num_teams = 30;
  uint64_t seed = 1979;
};

/// Generates a synthetic league history. Players have a latent ability, a
/// position-dependent stat profile (centers rebound and block, guards
/// assist, steal and shoot threes), a career arc peaking mid-career, team
/// affiliations with occasional trades, and season-level noise; three-point
/// volume ramps up over the decades. Deterministic in `config.seed`.
std::vector<PlayerSeason> GenerateLeagueHistory(const NbaConfig& config = {});

/// The eight skyline attribute column names, in the order the paper lists
/// them: points, rebounds, assists, steals, blocks, field goals, free
/// throws, three points.
const std::vector<std::string>& StatColumns();

/// Flattens the stat lines into a relation with columns
/// (player STRING, team STRING, year INT64, pos STRING, <8 stat DOUBLEs>).
Table ToTable(const std::vector<PlayerSeason>& seasons);

}  // namespace galaxy::nba

