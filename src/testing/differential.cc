#include "testing/differential.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/logging.h"

namespace galaxy::testing {

namespace {

const char* AlgorithmEnumLiteral(core::Algorithm algorithm) {
  switch (algorithm) {
    case core::Algorithm::kBruteForce:
      return "core::Algorithm::kBruteForce";
    case core::Algorithm::kNestedLoop:
      return "core::Algorithm::kNestedLoop";
    case core::Algorithm::kTransitive:
      return "core::Algorithm::kTransitive";
    case core::Algorithm::kSorted:
      return "core::Algorithm::kSorted";
    case core::Algorithm::kIndexed:
      return "core::Algorithm::kIndexed";
    case core::Algorithm::kIndexedBbox:
      return "core::Algorithm::kIndexedBbox";
    case core::Algorithm::kParallel:
      return "core::Algorithm::kParallel";
    case core::Algorithm::kAuto:
      return "core::Algorithm::kAuto";
  }
  return "?";
}

const char* KernelPolicyEnumLiteral(core::KernelPolicy policy) {
  switch (policy) {
    case core::KernelPolicy::kAuto:
      return "core::KernelPolicy::kAuto";
    case core::KernelPolicy::kScalar:
      return "core::KernelPolicy::kScalar";
    case core::KernelPolicy::kTiled:
      return "core::KernelPolicy::kTiled";
    case core::KernelPolicy::kSorted:
      return "core::KernelPolicy::kSorted";
    case core::KernelPolicy::kSweep2D:
      return "core::KernelPolicy::kSweep2D";
  }
  return "?";
}

std::string FormatCoord(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string DescribeGroup(const core::GroupedDataset& dataset, uint32_t id) {
  return "group " + std::to_string(id) + " ('" +
         dataset.group(id).label() + "', " +
         std::to_string(dataset.group(id).size()) + " records)";
}

}  // namespace

bool DifferentialConfig::exact() const {
  // BF/NL classify every unordered pair; safe mode disables the only
  // unsound skip; the parallel operator classifies every pair that could
  // change a mark.
  return parallel || algorithm == core::Algorithm::kBruteForce ||
         algorithm == core::Algorithm::kNestedLoop ||
         !prune_strongly_dominated;
}

std::string DifferentialConfig::Name() const {
  std::string out;
  if (parallel) {
    out = "PAR threads=" + std::to_string(num_threads) +
          " skip=" + std::to_string(skip_settled_pairs ? 1 : 0);
    if (pair_chunk != 0) out += " chunk=" + std::to_string(pair_chunk);
    if (chunk_cost_target != 0) {
      out += " cost=" + std::to_string(chunk_cost_target);
    }
    if (sequential_cutoff_cost != 0) {
      out += " cutoff=" + std::to_string(sequential_cutoff_cost);
    }
    if (giant_pair_min_cost != 0) {
      out += " giant=" + std::to_string(giant_pair_min_cost);
    }
  } else {
    out = core::AlgorithmToString(algorithm);
    out += " prune=" + std::to_string(prune_strongly_dominated ? 1 : 0);
    if (ordering != core::GroupOrdering::kCornerDistance) {
      out += " ord=";
      out += core::GroupOrderingToString(ordering);
    }
  }
  out += " mbb=" + std::to_string(use_mbb ? 1 : 0) +
         " stop=" + std::to_string(use_stop_rule ? 1 : 0);
  if (kernel != core::KernelPolicy::kAuto) {
    out += " kern=";
    out += core::KernelPolicyToString(kernel);
  }
  return out;
}

std::vector<DifferentialConfig> AllConfigurations() {
  std::vector<DifferentialConfig> out;

  // The reference mode itself: one configuration (its knobs are forced off
  // internally).
  {
    DifferentialConfig c;
    c.algorithm = core::Algorithm::kBruteForce;
    c.use_stop_rule = false;
    out.push_back(c);
  }

  for (bool mbb : {false, true}) {
    for (bool stop : {false, true}) {
      DifferentialConfig c;
      c.algorithm = core::Algorithm::kNestedLoop;
      c.use_mbb = mbb;
      c.use_stop_rule = stop;
      out.push_back(c);
    }
  }

  for (core::Algorithm algorithm :
       {core::Algorithm::kTransitive, core::Algorithm::kSorted,
        core::Algorithm::kIndexed, core::Algorithm::kIndexedBbox}) {
    for (bool mbb : {false, true}) {
      for (bool stop : {false, true}) {
        for (bool prune : {false, true}) {
          DifferentialConfig c;
          c.algorithm = algorithm;
          c.use_mbb = mbb;
          c.use_stop_rule = stop;
          c.prune_strongly_dominated = prune;
          out.push_back(c);
        }
      }
    }
  }

  // The alternative group ordering for the order-sensitive algorithms.
  for (core::Algorithm algorithm :
       {core::Algorithm::kSorted, core::Algorithm::kIndexed,
        core::Algorithm::kIndexedBbox}) {
    DifferentialConfig c;
    c.algorithm = algorithm;
    c.ordering = core::GroupOrdering::kSmallestFirstThenCorner;
    out.push_back(c);
  }

  // Every explicit counting kernel must reproduce the exact NL result no
  // matter which knobs steer the scan: with the stop rule (early exits mid
  // scan) and with MBB residuals plus exhaustive scans. kSweep2D silently
  // tiles on non-2D data, which is itself part of the contract.
  for (core::KernelPolicy kernel :
       {core::KernelPolicy::kScalar, core::KernelPolicy::kTiled,
        core::KernelPolicy::kSorted, core::KernelPolicy::kSweep2D}) {
    for (auto [mbb, stop] : {std::pair<bool, bool>{false, true},
                             std::pair<bool, bool>{true, false}}) {
      DifferentialConfig c;
      c.algorithm = core::Algorithm::kNestedLoop;
      c.kernel = kernel;
      c.use_mbb = mbb;
      c.use_stop_rule = stop;
      out.push_back(c);
    }
  }
  // One pruned-algorithm cross-check: the sorted kernel under the sorted
  // group access (both layers reorder work).
  {
    DifferentialConfig c;
    c.algorithm = core::Algorithm::kSorted;
    c.kernel = core::KernelPolicy::kSorted;
    out.push_back(c);
  }

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (bool skip : {false, true}) {
      for (auto [mbb, stop] : {std::pair<bool, bool>{false, true},
                               std::pair<bool, bool>{true, true},
                               std::pair<bool, bool>{false, false}}) {
        DifferentialConfig c;
        c.parallel = true;
        c.num_threads = threads;
        c.skip_settled_pairs = skip;
        c.use_mbb = mbb;
        c.use_stop_rule = stop;
        out.push_back(c);
      }
    }
  }
  // The explicit kernels under the work-stealing scheduler.
  for (core::KernelPolicy kernel :
       {core::KernelPolicy::kTiled, core::KernelPolicy::kSorted}) {
    DifferentialConfig c;
    c.parallel = true;
    c.num_threads = 4;
    c.kernel = kernel;
    out.push_back(c);
  }

  // The scheduler's cost-model paths. Adversarial datasets are tiny, so
  // with default knobs every parallel run would take the inline
  // (below-cutoff) path; these configurations force the pool
  // (sequential_cutoff_cost = 1), make every pair a "giant" whose tile
  // grid is split across workers (giant_pair_min_cost = 1), and shrink the
  // adaptive chunk to one claim per pair (chunk_cost_target = 1) — the
  // exact-marks contract must survive all of it.
  for (auto [mbb, stop] : {std::pair<bool, bool>{false, true},
                           std::pair<bool, bool>{true, true},
                           std::pair<bool, bool>{false, false}}) {
    DifferentialConfig c;
    c.parallel = true;
    c.num_threads = 4;
    c.use_mbb = mbb;
    c.use_stop_rule = stop;
    c.sequential_cutoff_cost = 1;
    c.giant_pair_min_cost = 1;
    c.chunk_cost_target = 1;
    out.push_back(c);
  }
  // Intra-pair splitting with settled-pair skipping off (every pair must
  // still be classified exactly once across phases).
  {
    DifferentialConfig c;
    c.parallel = true;
    c.num_threads = 8;
    c.skip_settled_pairs = false;
    c.sequential_cutoff_cost = 1;
    c.giant_pair_min_cost = 1;
    out.push_back(c);
  }
  // The legacy fixed pair-count chunking, forced through the pool.
  {
    DifferentialConfig c;
    c.parallel = true;
    c.num_threads = 4;
    c.pair_chunk = 3;
    c.sequential_cutoff_cost = 1;
    out.push_back(c);
  }
  // Adaptive chunking alone (no giants): cost-sized claims over the
  // triangle with the default split threshold out of reach.
  {
    DifferentialConfig c;
    c.parallel = true;
    c.num_threads = 4;
    c.sequential_cutoff_cost = 1;
    c.chunk_cost_target = 2;
    out.push_back(c);
  }
  return out;
}

core::AggregateSkylineResult RunConfiguration(
    const core::GroupedDataset& dataset, double gamma,
    const DifferentialConfig& config) {
  if (config.parallel) {
    core::ParallelOptions options;
    options.gamma = gamma;
    options.num_threads = config.num_threads;
    options.use_mbb = config.use_mbb;
    options.use_stop_rule = config.use_stop_rule;
    options.skip_settled_pairs = config.skip_settled_pairs;
    options.kernel = config.kernel;
    options.pair_chunk = config.pair_chunk;
    options.chunk_cost_target = config.chunk_cost_target;
    options.sequential_cutoff_cost = config.sequential_cutoff_cost;
    options.giant_pair_min_cost = config.giant_pair_min_cost;
    return core::ComputeAggregateSkylineParallel(dataset, options);
  }
  core::AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm = config.algorithm;
  options.use_mbb = config.use_mbb;
  options.use_stop_rule = config.use_stop_rule;
  options.prune_strongly_dominated = config.prune_strongly_dominated;
  options.ordering = config.ordering;
  options.kernel = config.kernel;
  return core::ComputeAggregateSkyline(dataset, options);
}

std::string CheckResult(const core::GroupedDataset& dataset, double gamma,
                        const DifferentialConfig& config,
                        const OracleResult& oracle,
                        const core::AggregateSkylineResult& result) {
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  if (result.dominated.size() != n || result.strongly_dominated.size() != n) {
    return "mark vector size mismatch (" +
           std::to_string(result.dominated.size()) + "/" +
           std::to_string(result.strongly_dominated.size()) + " for " +
           std::to_string(n) + " groups)";
  }

  core::Algorithm expected_algorithm =
      config.parallel ? core::Algorithm::kParallel : config.algorithm;
  if (result.algorithm_used != expected_algorithm) {
    return std::string("algorithm_used reports ") +
           core::AlgorithmToString(result.algorithm_used) + " instead of " +
           core::AlgorithmToString(expected_algorithm);
  }

  // Structural invariants of the result type itself.
  std::vector<uint32_t> unmarked;
  for (uint32_t i = 0; i < n; ++i) {
    if (result.strongly_dominated[i] != 0 && result.dominated[i] == 0) {
      return "strongly_dominated set without dominated for " +
             DescribeGroup(dataset, i);
    }
    if (result.dominated[i] == 0) unmarked.push_back(i);
  }
  if (result.skyline != unmarked) {
    return "skyline vector does not equal the ascending unmarked groups";
  }

  // Soundness: every mark the algorithm set must be true per the oracle.
  for (uint32_t i = 0; i < n; ++i) {
    if (result.dominated[i] != 0 && oracle.dominated[i] == 0) {
      return "false dominated mark on " + DescribeGroup(dataset, i) +
             " (no group gamma-dominates it)";
    }
    if (result.strongly_dominated[i] != 0 && oracle.strongly_dominated[i] == 0) {
      return "false strongly_dominated mark on " + DescribeGroup(dataset, i);
    }
  }

  if (config.exact()) {
    for (uint32_t i = 0; i < n; ++i) {
      if (result.dominated[i] != oracle.dominated[i]) {
        return "dominated[" + std::to_string(i) + "] = " +
               std::to_string(result.dominated[i]) + ", oracle says " +
               std::to_string(oracle.dominated[i]) + " for " +
               DescribeGroup(dataset, i);
      }
      if (result.strongly_dominated[i] != oracle.strongly_dominated[i]) {
        return "strongly_dominated[" + std::to_string(i) + "] = " +
               std::to_string(result.strongly_dominated[i]) +
               ", oracle says " +
               std::to_string(oracle.strongly_dominated[i]) + " for " +
               DescribeGroup(dataset, i);
      }
    }
    return "";
  }

  // Pruned TR/SI/IN/LO: the skyline may be a superset of the oracle's, but
  // only through the documented weak-transitivity gap — a surplus group
  // survives only if every group that γ-dominates it was skipped as
  // strongly dominated (per the algorithm's own marks, which soundness
  // already validated above).
  for (uint32_t i = 0; i < n; ++i) {
    if (oracle.dominated[i] == 0 || result.dominated[i] != 0) continue;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (!OracleGammaDominates(dataset.group(j), dataset.group(i), gamma)) {
        continue;
      }
      if (result.strongly_dominated[j] == 0) {
        return "surplus skyline " + DescribeGroup(dataset, i) +
               " not explained by the weak-transitivity gap: its dominator " +
               DescribeGroup(dataset, j) + " is not strongly dominated";
      }
    }
  }
  return "";
}

std::string RunAndCheck(const core::GroupedDataset& dataset, double gamma,
                        const DifferentialConfig& config,
                        const OracleResult& oracle) {
  core::AggregateSkylineResult result =
      RunConfiguration(dataset, gamma, config);
  return CheckResult(dataset, gamma, config, oracle, result);
}

Divergence CheckDataset(const core::GroupedDataset& dataset, double gamma) {
  OracleResult oracle =
      ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
  Divergence divergence;
  for (const DifferentialConfig& config : AllConfigurations()) {
    std::string detail = RunAndCheck(dataset, gamma, config, oracle);
    if (!detail.empty()) {
      divergence.found = true;
      divergence.config = config;
      divergence.detail = std::move(detail);
      return divergence;
    }
  }
  return divergence;
}

namespace {

// Re-runs config on the candidate; true if it still disagrees with the
// oracle. Parallel configurations are retried a few times: their failures
// can be schedule-dependent, and a shrink step must not accept a candidate
// just because one lucky interleaving passed.
bool StillFails(const PointGroups& groups, double gamma,
                const DifferentialConfig& config, std::string* detail) {
  if (groups.empty()) return false;
  bool any_records = false;
  for (const std::vector<Point>& g : groups) {
    if (!g.empty()) any_records = true;
  }
  if (!any_records) return false;

  core::GroupedDataset dataset = PointsToDataset(groups);
  OracleResult oracle =
      ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
  const int attempts = config.parallel ? 5 : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::string d = RunAndCheck(dataset, gamma, config, oracle);
    if (!d.empty()) {
      if (detail != nullptr) *detail = std::move(d);
      return true;
    }
  }
  return false;
}

PointGroups RoundToGrid(const PointGroups& groups, double grid) {
  PointGroups out = groups;
  for (std::vector<Point>& g : out) {
    for (Point& p : g) {
      for (double& v : p) v = std::round(v / grid) * grid;
    }
  }
  return out;
}

}  // namespace

Reproducer Shrink(const PointGroups& groups, double gamma,
                  const DifferentialConfig& config) {
  Reproducer repro;
  repro.groups = groups;
  repro.gamma = gamma;
  repro.config = config;
  // If the failure does not reproduce from the raw input (a vanished
  // schedule-dependent parallel failure), return it unshrunk.
  if (!StillFails(repro.groups, gamma, config, &repro.detail)) {
    return repro;
  }

  bool changed = true;
  while (changed) {
    changed = false;

    // Pass 1: drop whole groups.
    for (size_t g = 0; g < repro.groups.size() && repro.groups.size() > 1;) {
      PointGroups candidate = repro.groups;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(g));
      std::string detail;
      if (StillFails(candidate, gamma, config, &detail)) {
        repro.groups = std::move(candidate);
        repro.detail = std::move(detail);
        changed = true;
      } else {
        ++g;
      }
    }

    // Pass 2: drop individual records.
    for (size_t g = 0; g < repro.groups.size(); ++g) {
      for (size_t i = 0; i < repro.groups[g].size();) {
        PointGroups candidate = repro.groups;
        candidate[g].erase(candidate[g].begin() +
                           static_cast<std::ptrdiff_t>(i));
        std::string detail;
        if (StillFails(candidate, gamma, config, &detail)) {
          repro.groups = std::move(candidate);
          repro.detail = std::move(detail);
          changed = true;
        } else {
          ++i;
        }
      }
    }

    // Pass 3: round coordinates onto coarser grids (coarsest first).
    for (double grid : {0.25, 0.125, 0.0625, 0.015625}) {
      PointGroups candidate = RoundToGrid(repro.groups, grid);
      if (candidate == repro.groups) continue;
      std::string detail;
      if (StillFails(candidate, gamma, config, &detail)) {
        repro.groups = std::move(candidate);
        repro.detail = std::move(detail);
        changed = true;
        break;
      }
    }
  }
  return repro;
}

namespace {

// Deterministic test-name hash: FNV-1a over the configuration name, gamma
// and every coordinate, so the generated test keeps the same identity when
// the campaign is re-run and distinct failures get distinct names.
uint64_t ReproducerFingerprint(const Reproducer& repro) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  std::string config_name = repro.config.Name();
  mix(config_name.data(), config_name.size());
  mix(&repro.gamma, sizeof(repro.gamma));
  for (const std::vector<Point>& group : repro.groups) {
    uint64_t marker = group.size();
    mix(&marker, sizeof(marker));
    for (const Point& p : group) {
      mix(p.data(), p.size() * sizeof(double));
    }
  }
  return h;
}

}  // namespace

std::string ReproducerToCpp(const Reproducer& repro) {
  char name[64];
  std::snprintf(name, sizeof(name), "Repro_%016llx_Seed%llu",
                static_cast<unsigned long long>(ReproducerFingerprint(repro)),
                static_cast<unsigned long long>(repro.dataset_seed));
  std::string out;
  out += "// Shrunk reproducer from the differential harness.\n";
  out += "// Disagreement: " + repro.detail + "\n";
  out += "TEST(DifferentialRegressionTest, " + std::string(name) + ") {\n";
  out += "  core::GroupedDataset ds = core::GroupedDataset::FromPoints({\n";
  for (const std::vector<Point>& g : repro.groups) {
    out += "      {";
    for (size_t i = 0; i < g.size(); ++i) {
      out += "{";
      for (size_t d = 0; d < g[i].size(); ++d) {
        out += FormatCoord(g[i][d]);
        if (d + 1 < g[i].size()) out += ", ";
      }
      out += "}";
      if (i + 1 < g.size()) out += ", ";
    }
    out += "},\n";
  }
  out += "  });\n";
  out += "  testing::DifferentialConfig config;\n";
  if (repro.config.parallel) {
    out += "  config.parallel = true;\n";
    out += "  config.num_threads = " +
           std::to_string(repro.config.num_threads) + ";\n";
    out += "  config.skip_settled_pairs = " +
           std::string(repro.config.skip_settled_pairs ? "true" : "false") +
           ";\n";
    if (repro.config.pair_chunk != 0) {
      out += "  config.pair_chunk = " +
             std::to_string(repro.config.pair_chunk) + ";\n";
    }
    if (repro.config.chunk_cost_target != 0) {
      out += "  config.chunk_cost_target = " +
             std::to_string(repro.config.chunk_cost_target) + ";\n";
    }
    if (repro.config.sequential_cutoff_cost != 0) {
      out += "  config.sequential_cutoff_cost = " +
             std::to_string(repro.config.sequential_cutoff_cost) + ";\n";
    }
    if (repro.config.giant_pair_min_cost != 0) {
      out += "  config.giant_pair_min_cost = " +
             std::to_string(repro.config.giant_pair_min_cost) + ";\n";
    }
  } else {
    out += "  config.algorithm = " +
           std::string(AlgorithmEnumLiteral(repro.config.algorithm)) + ";\n";
    out += "  config.prune_strongly_dominated = " +
           std::string(repro.config.prune_strongly_dominated ? "true"
                                                             : "false") +
           ";\n";
  }
  out += "  config.use_mbb = " +
         std::string(repro.config.use_mbb ? "true" : "false") + ";\n";
  out += "  config.use_stop_rule = " +
         std::string(repro.config.use_stop_rule ? "true" : "false") + ";\n";
  if (repro.config.kernel != core::KernelPolicy::kAuto) {
    out += "  config.kernel = " +
           std::string(KernelPolicyEnumLiteral(repro.config.kernel)) + ";\n";
  }
  out += "  const double gamma = " + FormatCoord(repro.gamma) + ";\n";
  out += "  testing::OracleResult oracle =\n";
  out += "      testing::ComputeOracle(ds, "
         "core::GammaThresholds::FromGamma(gamma));\n";
  out += "  EXPECT_EQ(testing::RunAndCheck(ds, gamma, config, oracle), "
         "\"\");\n";
  out += "}\n";
  return out;
}

}  // namespace galaxy::testing
