#include "testing/oracle.h"

#include <span>

namespace galaxy::testing {

namespace {

// Pareto dominance (Definition 1), re-implemented independently of
// skyline::Dominates so the oracle shares no predicate code with the
// implementations it checks. All attributes are MAX-oriented.
bool RecordDominates(std::span<const double> a, std::span<const double> b) {
  bool strictly_better = false;
  for (size_t d = 0; d < a.size(); ++d) {
    if (a[d] < b[d]) return false;
    if (a[d] > b[d]) strictly_better = true;
  }
  return strictly_better;
}

bool ProbabilityDominates(double p, double threshold) {
  return p == 1.0 || p > threshold;
}

}  // namespace

double OracleDominationProbability(const core::Group& s,
                                   const core::Group& r) {
  const uint64_t total = static_cast<uint64_t>(s.size()) * r.size();
  if (total == 0) return 0.0;
  uint64_t count = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t j = 0; j < r.size(); ++j) {
      if (RecordDominates(s.point(i), r.point(j))) ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(total);
}

bool OracleGammaDominates(const core::Group& s, const core::Group& r,
                          double gamma) {
  if (s.size() == 0 || r.size() == 0) return false;
  return ProbabilityDominates(OracleDominationProbability(s, r), gamma);
}

core::PairOutcome OracleClassifyPair(const core::Group& g1,
                                     const core::Group& g2,
                                     const core::GammaThresholds& thresholds) {
  double p12 = OracleDominationProbability(g1, g2);
  double p21 = OracleDominationProbability(g2, g1);
  if (g1.size() == 0 || g2.size() == 0) {
    return core::PairOutcome::kIncomparable;
  }
  if (ProbabilityDominates(p12, thresholds.gamma_bar)) {
    return core::PairOutcome::kFirstDominatesStrongly;
  }
  if (ProbabilityDominates(p12, thresholds.gamma)) {
    return core::PairOutcome::kFirstDominates;
  }
  if (ProbabilityDominates(p21, thresholds.gamma_bar)) {
    return core::PairOutcome::kSecondDominatesStrongly;
  }
  if (ProbabilityDominates(p21, thresholds.gamma)) {
    return core::PairOutcome::kSecondDominates;
  }
  return core::PairOutcome::kIncomparable;
}

OracleResult ComputeOracle(const core::GroupedDataset& dataset,
                           const core::GammaThresholds& thresholds) {
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  OracleResult result;
  result.dominated.assign(n, 0);
  result.strongly_dominated.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (dataset.group(i).size() == 0 || dataset.group(j).size() == 0) {
        continue;
      }
      double p = OracleDominationProbability(dataset.group(j),
                                             dataset.group(i));
      if (ProbabilityDominates(p, thresholds.gamma)) result.dominated[i] = 1;
      if (ProbabilityDominates(p, thresholds.gamma_bar)) {
        result.strongly_dominated[i] = 1;
      }
    }
    if (result.dominated[i] == 0) result.skyline.push_back(i);
  }
  return result;
}

}  // namespace galaxy::testing
