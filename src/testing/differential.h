#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/aggregate_skyline.h"
#include "core/parallel.h"
#include "testing/oracle.h"
#include "testing/property_gen.h"

namespace galaxy::testing {

/// One algorithm configuration of the differential matrix: a sequential
/// algorithm with its tuning knobs, or the parallel operator with a thread
/// count.
struct DifferentialConfig {
  bool parallel = false;
  core::Algorithm algorithm = core::Algorithm::kBruteForce;
  bool use_mbb = false;
  bool use_stop_rule = true;
  bool prune_strongly_dominated = true;
  core::GroupOrdering ordering = core::GroupOrdering::kCornerDistance;
  /// Counting kernel for every pairwise residual scan; every policy must
  /// yield identical results (core/count_kernel.h).
  core::KernelPolicy kernel = core::KernelPolicy::kAuto;
  /// Parallel-only knobs. The cost-model fields mirror ParallelOptions:
  /// 0 means "library default"; the matrix sets tiny explicit values so the
  /// pool, adaptive-chunking, and intra-pair-split paths are exercised even
  /// on the small adversarial datasets (whose total cost would otherwise
  /// stay below the inline cutoff).
  size_t num_threads = 1;
  bool skip_settled_pairs = true;
  uint64_t pair_chunk = 0;
  uint64_t chunk_cost_target = 0;
  uint64_t sequential_cutoff_cost = 0;
  uint64_t giant_pair_min_cost = 0;

  /// True when the configuration must reproduce the oracle's dominated and
  /// strongly_dominated vectors exactly: BF/NL (which classify every
  /// pair), any algorithm in safe mode (prune_strongly_dominated = false),
  /// and the parallel operator. Pruned TR/SI/IN/LO may legitimately return
  /// a superset of the skyline (the weak-transitivity gap; DESIGN.md §3).
  bool exact() const;

  /// "TR mbb=1 stop=0 prune=1" / "PAR threads=4 skip=1 ..." — for messages.
  std::string Name() const;
};

/// The full differential matrix: every sequential algorithm crossed with
/// {use_mbb} × {use_stop_rule} × {prune_strongly_dominated}, alternative
/// group orderings for the order-sensitive algorithms, every explicit
/// counting kernel (against the kAuto default used everywhere else), and
/// the parallel operator at 1 and 4 threads with both skip-settled
/// settings.
std::vector<DifferentialConfig> AllConfigurations();

/// Runs one configuration on the dataset.
core::AggregateSkylineResult RunConfiguration(
    const core::GroupedDataset& dataset, double gamma,
    const DifferentialConfig& config);

/// Checks one result against the oracle under the documented semantics:
/// structural invariants (skyline ascending and equal to the unmarked
/// groups, strong implies dominated), mark soundness (every mark the
/// algorithm set is true per the oracle), the reported algorithm
/// identifier, exactness for exact() configurations, and for pruned
/// configurations that every surplus skyline group is explained by the
/// weak-transitivity gap (all its true γ-dominators carry the algorithm's
/// own strongly-dominated mark). Returns "" when consistent, else a
/// description of the first disagreement.
std::string CheckResult(const core::GroupedDataset& dataset, double gamma,
                        const DifferentialConfig& config,
                        const OracleResult& oracle,
                        const core::AggregateSkylineResult& result);

/// Runs `config` and checks it; "" when consistent.
std::string RunAndCheck(const core::GroupedDataset& dataset, double gamma,
                        const DifferentialConfig& config,
                        const OracleResult& oracle);

/// A divergence found by the harness.
struct Divergence {
  bool found = false;
  DifferentialConfig config;
  std::string detail;
};

/// Runs every configuration of AllConfigurations() against the oracle;
/// stops at the first disagreement.
Divergence CheckDataset(const core::GroupedDataset& dataset, double gamma);

/// A minimal failing input, ready to be checked in as a regression test.
struct Reproducer {
  PointGroups groups;
  double gamma = 0.5;
  DifferentialConfig config;
  std::string detail;
  /// Seed of the dataset that produced the failure (0 when unknown);
  /// embedded in the generated test name so the original campaign is
  /// recoverable from the pasted test alone.
  uint64_t dataset_seed = 0;
};

/// Greedily shrinks a failing input while the same configuration keeps
/// disagreeing with the oracle: drop whole groups, then drop individual
/// records, then round coordinates to coarser grids. The result is a local
/// minimum: no single further step still fails.
Reproducer Shrink(const PointGroups& groups, double gamma,
                  const DifferentialConfig& config);

/// Renders the reproducer as a ready-to-paste C++ gtest case. The test
/// name is deterministic — Repro_<hash>_Seed<seed>, where the hash covers
/// the configuration, gamma and every coordinate — so two reproducers
/// collide in name only if they are the same failure.
std::string ReproducerToCpp(const Reproducer& repro);

}  // namespace galaxy::testing

