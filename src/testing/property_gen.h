#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "core/group.h"

namespace galaxy::testing {

/// Bounds for the adversarial dataset generator. The defaults keep
/// datasets small enough that the exhaustive oracle is instantaneous while
/// group counts/sizes still cover every algorithm code path (pruning,
/// ordering, window queries, striping).
struct PropertyGenConfig {
  size_t min_groups = 2;
  size_t max_groups = 10;
  size_t max_records_per_group = 8;
  size_t max_dims = 8;
  /// Include zero-record groups (legal inputs: such a group neither
  /// dominates nor is dominated).
  bool allow_empty_groups = true;
};

/// Raw material of a dataset — kept as point lists so the shrinker can
/// drop groups/records before rebuilding a GroupedDataset.
using PointGroups = std::vector<std::vector<Point>>;

/// Draws an adversarial grouped dataset: grid-aligned coordinates (so
/// domination probabilities land exactly on γ thresholds), duplicate and
/// all-equal records, records copied onto other groups' MBB corners and
/// boundaries, empty and singleton groups, Zipfian group sizes, and
/// anti-correlated dimensions up to `max_dims`. At least one group is
/// always non-empty. Deterministic in the generator state.
PointGroups GenerateAdversarialPoints(Rng& rng,
                                      const PropertyGenConfig& config = {});

/// The same, materialized as a dataset.
core::GroupedDataset GenerateAdversarialDataset(
    Rng& rng, const PropertyGenConfig& config = {});

/// Builds a dataset from point lists (thin wrapper over
/// GroupedDataset::FromPoints, shared by the generator and the shrinker).
core::GroupedDataset PointsToDataset(const PointGroups& groups);

/// Draws a γ in [0.5, 1] biased toward the adversarial spots: the exact
/// grid thresholds 0.5 / 0.75 / 1.0 (where p == γ ties are common on
/// grid-aligned data), values ε-close to those thresholds, and the γ̄
/// clamp region γ > 3/4.
double PickAdversarialGamma(Rng& rng);

}  // namespace galaxy::testing

