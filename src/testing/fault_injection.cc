#include "testing/fault_injection.h"

#include <algorithm>
#include <thread>

#include "core/aggregate_skyline.h"

namespace galaxy::testing {

namespace {

// Builds the bounded-call options for one differential configuration.
core::AggregateSkylineOptions BoundedOptions(const DifferentialConfig& config,
                                             double gamma) {
  core::AggregateSkylineOptions options;
  options.gamma = gamma;
  options.algorithm =
      config.parallel ? core::Algorithm::kParallel : config.algorithm;
  options.use_mbb = config.use_mbb;
  options.use_stop_rule = config.use_stop_rule;
  options.prune_strongly_dominated = config.prune_strongly_dominated;
  options.ordering = config.ordering;
  options.kernel = config.kernel;
  return options;
}

// Worker count of the bounded parallel path (Bounded forwards with
// hardware concurrency, clamped to the group count).
size_t WorkerCount(const DifferentialConfig& config,
                   const core::GroupedDataset& dataset) {
  if (!config.parallel) return 1;
  size_t threads = std::max(1u, std::thread::hardware_concurrency());
  return std::min<size_t>(threads,
                          std::max<size_t>(1, dataset.num_groups()));
}

// Upper bound on comparisons charged after the trigger: each worker may
// have one charge batch in flight, plus one MBB preclassification charge
// (2 corner tests per record of the pair), plus one poll round.
uint64_t LatencySlack(size_t workers, const core::GroupedDataset& dataset) {
  size_t max_group = 0;
  for (size_t g = 0; g < dataset.num_groups(); ++g) {
    max_group = std::max(max_group, dataset.group(g).size());
  }
  const uint64_t per_pair_preclass = 4 * static_cast<uint64_t>(max_group);
  return static_cast<uint64_t>(workers + 1) *
         (core::ExecutionContext::kChargeBatch + per_pair_preclass + 64);
}

std::string CheckDegraded(const core::GroupedDataset& dataset,
                          const OracleResult& oracle,
                          const core::AggregateSkylineResult& result) {
  const uint32_t n = static_cast<uint32_t>(dataset.num_groups());
  if (result.dominated.size() != n || result.strongly_dominated.size() != n) {
    return "degraded result has wrong mark vector sizes";
  }
  // Structural: skyline = the unmarked groups, ascending.
  std::vector<uint32_t> unmarked;
  for (uint32_t g = 0; g < n; ++g) {
    if (result.dominated[g] == 0) unmarked.push_back(g);
  }
  if (result.skyline != unmarked) {
    return "degraded skyline disagrees with its own dominated marks";
  }
  // Soundness: every mark the degraded run carries is true.
  for (uint32_t g = 0; g < n; ++g) {
    if (result.dominated[g] != 0 && oracle.dominated[g] == 0) {
      return "degraded run marked group " + std::to_string(g) +
             " dominated, but the oracle disagrees (unsound mark)";
    }
    if (result.strongly_dominated[g] != 0 &&
        oracle.strongly_dominated[g] == 0) {
      return "degraded run marked group " + std::to_string(g) +
             " strongly dominated, but the oracle disagrees (unsound mark)";
    }
  }
  // Superset: no oracle-skyline group may be missing.
  for (uint32_t g : oracle.skyline) {
    if (!std::binary_search(result.skyline.begin(), result.skyline.end(),
                            g)) {
      return "degraded skyline lost oracle-skyline group " +
             std::to_string(g) + " (not a superset)";
    }
  }
  // A kExact claim must be backed by exact equality.
  if (result.quality == core::ResultQuality::kExact &&
      result.skyline != oracle.skyline) {
    return "degraded result claims kExact but differs from the oracle";
  }
  return "";
}

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCancel:
      return "cancel";
    case FaultKind::kDeadline:
      return "deadline";
    case FaultKind::kComparisonBudget:
      return "comparison-budget";
  }
  return "?";
}

std::string FaultPlan::Name() const {
  std::string out = FaultKindToString(kind);
  out += "@" + std::to_string(trigger);
  out += allow_approximate ? " approx=1" : " approx=0";
  return out;
}

FaultCheckOutcome RunFaultCheck(const core::GroupedDataset& dataset,
                                double gamma,
                                const DifferentialConfig& config,
                                const OracleResult& oracle,
                                const FaultPlan& plan) {
  core::ExecutionContext exec;
  switch (plan.kind) {
    case FaultKind::kCancel:
      exec.InjectCancelAtComparison(plan.trigger);
      break;
    case FaultKind::kDeadline:
      exec.InjectDeadlineAtComparison(plan.trigger);
      break;
    case FaultKind::kComparisonBudget:
      exec.set_max_comparisons(plan.trigger);
      break;
  }

  core::AggregateSkylineOptions options = BoundedOptions(config, gamma);
  options.exec = &exec;
  options.allow_approximate = plan.allow_approximate;

  auto bounded = core::ComputeAggregateSkylineBounded(dataset, options);

  FaultCheckOutcome outcome;
  outcome.tripped = exec.stopped();
  auto fail = [&](std::string detail) {
    outcome.ok = false;
    outcome.detail = std::move(detail);
    return outcome;
  };

  // Bounded unwind latency: comparisons charged past the trigger are
  // capped by the in-flight batches of the workers.
  if (outcome.tripped) {
    const uint64_t slack =
        LatencySlack(WorkerCount(config, dataset), dataset);
    if (exec.comparisons() > plan.trigger + slack) {
      return fail("run kept charging after the trip: " +
                  std::to_string(exec.comparisons()) +
                  " comparisons, trigger " + std::to_string(plan.trigger) +
                  ", slack " + std::to_string(slack));
    }
  }

  if (!outcome.tripped) {
    // The fault never fired: this must be indistinguishable from an
    // unbounded run.
    if (!bounded.ok()) {
      return fail("no fault fired but the run errored: " +
                  bounded.status().ToString());
    }
    if (bounded->quality != core::ResultQuality::kExact) {
      return fail("no fault fired but quality is not kExact");
    }
    std::string detail =
        CheckResult(dataset, gamma, config, oracle, *bounded);
    if (!detail.empty()) return fail("exact-path check: " + detail);
    outcome.ok = true;
    return outcome;
  }

  if (!plan.allow_approximate) {
    if (bounded.ok()) {
      return fail("fault fired without allow_approximate but a result "
                  "was returned");
    }
    StatusCode expected = StatusCode::kCancelled;
    if (plan.kind == FaultKind::kDeadline) {
      expected = StatusCode::kDeadlineExceeded;
    } else if (plan.kind == FaultKind::kComparisonBudget) {
      expected = StatusCode::kResourceExhausted;
    }
    if (bounded.status().code() != expected) {
      return fail(std::string("fault ") + FaultKindToString(plan.kind) +
                  " surfaced as " + bounded.status().ToString());
    }
    outcome.ok = true;
    return outcome;
  }

  // Degraded path: a result must come back and be a sound superset.
  if (!bounded.ok()) {
    return fail("allow_approximate set but the run errored: " +
                bounded.status().ToString());
  }
  std::string detail = CheckDegraded(dataset, oracle, *bounded);
  if (!detail.empty()) return fail(std::move(detail));
  outcome.ok = true;
  return outcome;
}

FaultPlan RandomFaultPlan(Rng& rng, uint64_t reference_total_comparisons) {
  FaultPlan plan;
  switch (rng.UniformInt(0, 2)) {
    case 0:
      plan.kind = FaultKind::kCancel;
      break;
    case 1:
      plan.kind = FaultKind::kDeadline;
      break;
    default:
      plan.kind = FaultKind::kComparisonBudget;
      break;
  }
  const uint64_t ref = reference_total_comparisons;
  switch (rng.UniformInt(0, 6)) {
    case 0:
      plan.trigger = 0;
      break;
    case 1:
      plan.trigger = 1;
      break;
    case 2:  // inside the first pair's preclassification region
      plan.trigger = static_cast<uint64_t>(rng.UniformInt(2, 64));
      break;
    case 3:  // mid-run
      plan.trigger = ref / 2;
      break;
    case 4:  // right at the boundary
      plan.trigger = ref > 0 ? ref - 1 : 0;
      break;
    case 5:  // just past the end: may or may not fire depending on charges
      plan.trigger = ref + 1;
      break;
    default:  // far beyond: must never fire
      plan.trigger = 2 * ref + 1000;
      break;
  }
  plan.allow_approximate = rng.UniformInt(0, 1) == 1;
  return plan;
}

FaultDivergence FuzzFaults(uint64_t seed, int iterations,
                           uint64_t* fault_points_run) {
  FaultDivergence divergence;
  uint64_t points = 0;
  const std::vector<DifferentialConfig> configs = AllConfigurations();

  for (int iter = 0; iter < iterations; ++iter) {
    const uint64_t dataset_seed = seed + static_cast<uint64_t>(iter);
    Rng rng(dataset_seed, /*stream=*/7);
    core::GroupedDataset dataset = GenerateAdversarialDataset(rng);
    const double gamma = PickAdversarialGamma(rng);
    const OracleResult oracle =
        ComputeOracle(dataset, core::GammaThresholds::FromGamma(gamma));
    const DifferentialConfig& config =
        configs[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(configs.size()) - 1))];

    // Fault-free reference run through the same bounded path: yields the
    // total charged work (to place triggers) and doubles as a check that
    // an untripped context is invisible.
    core::ExecutionContext reference;
    core::AggregateSkylineOptions ref_options =
        BoundedOptions(config, gamma);
    ref_options.exec = &reference;
    auto ref_result =
        core::ComputeAggregateSkylineBounded(dataset, ref_options);
    ++points;
    if (!ref_result.ok() || reference.stopped()) {
      divergence.found = true;
      divergence.detail = "unlimited context tripped: " +
                          ref_result.status().ToString();
    } else {
      const uint64_t total = reference.comparisons();
      for (int p = 0; p < 4 && !divergence.found; ++p) {
        FaultPlan plan = RandomFaultPlan(rng, total);
        FaultCheckOutcome outcome =
            RunFaultCheck(dataset, gamma, config, oracle, plan);
        ++points;
        if (!outcome.ok) {
          divergence.found = true;
          divergence.plan = plan;
          divergence.detail = outcome.detail;
        }
      }
    }
    if (divergence.found) {
      divergence.dataset_seed = dataset_seed;
      divergence.gamma = gamma;
      divergence.config = config;
      break;
    }
  }
  if (fault_points_run != nullptr) *fault_points_run = points;
  return divergence;
}

}  // namespace galaxy::testing
