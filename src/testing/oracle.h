#pragma once

#include <cstdint>
#include <vector>

#include "core/gamma.h"
#include "core/group.h"

namespace galaxy::testing {

/// Ground truth of one aggregate-skyline computation, produced straight
/// from Definition 3 with no pruning, no stopping rule, no MBB shortcuts
/// and no shared code with the production pair classifier (even the
/// record-level dominance test is re-implemented here). The differential
/// harness cross-validates every algorithm configuration against this.
struct OracleResult {
  /// Per group id: some other group γ-dominates it.
  std::vector<uint8_t> dominated;
  /// Per group id: some other group γ̄-dominates it (strong domination).
  std::vector<uint8_t> strongly_dominated;
  /// Group ids with no γ-dominator, ascending — the exact aggregate
  /// skyline of Definition 2.
  std::vector<uint32_t> skyline;
};

/// p(S ≻ R) by exhaustive counting (Definition 3). Returns 0 when either
/// group is empty: an empty group neither dominates nor is dominated.
double OracleDominationProbability(const core::Group& s, const core::Group& r);

/// True iff p(S ≻ R) = 1 or p(S ≻ R) > gamma (Definition 3); false when
/// either group is empty.
bool OracleGammaDominates(const core::Group& s, const core::Group& r,
                          double gamma);

/// Classification of one unordered pair against both thresholds, from the
/// exact probabilities alone.
core::PairOutcome OracleClassifyPair(const core::Group& g1,
                                     const core::Group& g2,
                                     const core::GammaThresholds& thresholds);

/// Exact dominated / strongly-dominated marks and skyline for the whole
/// dataset: one exhaustive probability per ordered group pair.
OracleResult ComputeOracle(const core::GroupedDataset& dataset,
                           const core::GammaThresholds& thresholds);

}  // namespace galaxy::testing

