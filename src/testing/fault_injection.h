#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/exec_context.h"
#include "testing/differential.h"
#include "testing/oracle.h"

namespace galaxy::testing {

/// The fault classes the control plane can be hit with mid-run. All three
/// are injected deterministically at a chosen comparison count (see
/// ExecutionContext::InjectCancelAtComparison and friends), so a failing
/// (dataset seed, plan) pair replays exactly.
enum class FaultKind {
  kCancel,            // cooperative cancellation
  kDeadline,          // wall-clock deadline expiry
  kComparisonBudget,  // max_comparisons resource cap
};

const char* FaultKindToString(FaultKind kind);

/// One planned mid-run fault.
struct FaultPlan {
  FaultKind kind = FaultKind::kCancel;
  /// Charged-work count at which the fault fires. 0 fires before the first
  /// comparison; a trigger beyond the total work never fires at all (the
  /// run must then complete exactly).
  uint64_t trigger = 0;
  /// Caller opts into graceful degradation instead of an error.
  bool allow_approximate = false;

  std::string Name() const;
};

/// Outcome of one fault-checked run.
struct FaultCheckOutcome {
  bool ok = false;
  /// Empty when ok; else the first violated property.
  std::string detail;
  /// Whether the fault actually fired (small inputs may finish first).
  bool tripped = false;
};

/// Runs `config` on `dataset` through ComputeAggregateSkylineBounded with
/// the planned fault armed, then checks the control-plane contract:
///  - the run stops within a bounded number of comparisons after the
///    trigger (one in-flight charge batch per worker plus per-pair
///    preclassification slack);
///  - if the fault never fired, the result is exact and passes the full
///    differential check against the oracle;
///  - if it fired without allow_approximate, the returned Status code
///    matches the injected fault kind;
///  - if it fired with allow_approximate, the degraded result is a sound
///    superset of the oracle skyline, every dominance mark it carries is
///    true, its structural invariants hold, and a kExact quality claim is
///    backed by exact equality with the oracle.
FaultCheckOutcome RunFaultCheck(const core::GroupedDataset& dataset,
                                double gamma,
                                const DifferentialConfig& config,
                                const OracleResult& oracle,
                                const FaultPlan& plan);

/// Draws a randomized fault plan: kind uniform over the three classes,
/// trigger biased toward the interesting region (0, 1, just past the MBB
/// preclassification, mid-run, just before/after the total work of a
/// fault-free reference run), allow_approximate on half the draws.
FaultPlan RandomFaultPlan(Rng& rng, uint64_t reference_total_comparisons);

/// A failing (dataset, plan, config) combination, replayable from the
/// generator seed.
struct FaultDivergence {
  bool found = false;
  uint64_t dataset_seed = 0;
  double gamma = 0.5;
  DifferentialConfig config;
  FaultPlan plan;
  std::string detail;
};

/// Fuzz loop: `iterations` rounds of (adversarial dataset, adversarial γ,
/// random configuration, random fault plan), stopping at the first
/// violation. `fault_points_run`, when non-null, receives the number of
/// individual fault checks executed.
FaultDivergence FuzzFaults(uint64_t seed, int iterations,
                           uint64_t* fault_points_run = nullptr);

}  // namespace galaxy::testing

