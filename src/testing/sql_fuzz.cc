#include "testing/sql_fuzz.h"

#include <algorithm>
#include <cstddef>

#include "core/exec_context.h"
#include "relation/table.h"
#include "sql/executor.h"

namespace galaxy::testing {

namespace {

// SQL fragments the token-insertion mutator splices in: keywords the
// grammar cares about, punctuation that stresses the lexer, and boundary
// literals for the SKYLINE OF clauses.
const char* kDictionary[] = {
    "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",      "HAVING",
    "ORDER",  "LIMIT",  "UNION",  "ALL",    "DISTINCT", "SKYLINE",
    "OF",     "MIN",    "MAX",    "GAMMA",  "RANK",     "AND",
    "OR",     "NOT",    "NULL",   "COUNT",  "SUM",      "AVG",
    "(",      ")",      ",",      "*",      ".",        ";",
    "'",      "\"",     "0.5",    "0.75",   "1.0",      "1e308",
    "-1",     "0",      "movies", "ratings", "year",    "pop",
    "score",  "genre",  "title",  "=",      "<",        ">",
    "<=",     ">=",     "<>",     "+",      "-",        "/",
    "%",      "--",     "/*",     "*/",     "\\",       "0x",
};

}  // namespace

const std::vector<std::string>& SqlFuzzCorpus() {
  static const std::vector<std::string> corpus{
      "SELECT title, pop, score FROM movies SKYLINE OF pop MAX, score MAX",
      "SELECT genre FROM movies GROUP BY genre "
      "SKYLINE OF pop MAX, score MAX GAMMA 0.5",
      "SELECT genre FROM movies GROUP BY genre "
      "SKYLINE OF pop MAX, score MIN GAMMA 0.75",
      "SELECT genre FROM movies GROUP BY genre "
      "SKYLINE OF pop MAX, score MAX GAMMA RANK",
      "SELECT genre, COUNT(*) FROM movies WHERE year > 2000 GROUP BY genre "
      "HAVING COUNT(*) > 1 SKYLINE OF pop MAX, score MAX GAMMA 0.6",
      "SELECT m.title, r.stars FROM movies m, ratings r "
      "WHERE m.id = r.movie_id SKYLINE OF r.stars MAX, m.pop MAX",
      "SELECT genre FROM movies GROUP BY genre "
      "SKYLINE OF pop MAX, score MAX GAMMA 1.0 ORDER BY genre LIMIT 3",
      "SELECT title FROM movies WHERE pop > 100 "
      "UNION SELECT title FROM movies WHERE score > 3",
      "SELECT genre FROM movies WHERE year IN "
      "(SELECT year FROM movies WHERE pop > 200) GROUP BY genre "
      "SKYLINE OF pop MAX, score MAX GAMMA 0.55",
      "SELECT DISTINCT genre, AVG(score) FROM movies GROUP BY genre "
      "SKYLINE OF pop MIN, score MIN GAMMA 0.9",
  };
  return corpus;
}

sql::Database MakeSqlFuzzDatabase() {
  sql::Database db;
  {
    TableBuilder movies{Schema({{"id", ValueType::kInt64},
                                {"title", ValueType::kString},
                                {"genre", ValueType::kString},
                                {"year", ValueType::kInt64},
                                {"pop", ValueType::kDouble},
                                {"score", ValueType::kDouble}})};
    const char* genres[] = {"drama", "comedy", "sci-fi"};
    for (int64_t i = 0; i < 18; ++i) {
      movies.AddRow({Value(i), Value("m" + std::to_string(i)),
                     Value(genres[i % 3]), Value(int64_t{1995} + i % 25),
                     Value(50.0 + 37.0 * static_cast<double>(i % 7)),
                     Value(1.0 + 0.5 * static_cast<double>(i % 8))});
    }
    db.Register("movies", movies.Build());
  }
  {
    TableBuilder ratings{Schema({{"movie_id", ValueType::kInt64},
                                 {"stars", ValueType::kInt64}})};
    for (int64_t i = 0; i < 18; ++i) {
      ratings.AddRow({Value(i % 12), Value(int64_t{1} + i % 5)});
    }
    db.Register("ratings", ratings.Build());
  }
  return db;
}

std::string MutateSql(Rng& rng) {
  const std::vector<std::string>& corpus = SqlFuzzCorpus();
  std::string s = corpus[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];

  const int mutations = static_cast<int>(rng.UniformInt(1, 4));
  for (int m = 0; m < mutations; ++m) {
    if (s.empty()) s = "SELECT";
    const size_t len = s.size();
    switch (rng.UniformInt(0, 5)) {
      case 0: {  // flip one byte to a random printable (or not) character
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(len) - 1));
        s[pos] = static_cast<char>(rng.UniformInt(1, 255));
        break;
      }
      case 1: {  // delete a span
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(len) - 1));
        size_t span = static_cast<size_t>(rng.UniformInt(1, 10));
        s.erase(pos, span);
        break;
      }
      case 2: {  // duplicate a span in place
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(len) - 1));
        size_t span = std::min<size_t>(
            static_cast<size_t>(rng.UniformInt(1, 12)), len - pos);
        s.insert(pos, s.substr(pos, span));
        break;
      }
      case 3: {  // insert a dictionary token
        const size_t dict_size =
            sizeof(kDictionary) / sizeof(kDictionary[0]);
        const char* token = kDictionary[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(dict_size) - 1))];
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(len)));
        s.insert(pos, std::string(" ") + token + " ");
        break;
      }
      case 4: {  // splice the tail of another corpus entry
        const std::string& other = corpus[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];
        size_t cut = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(len) - 1));
        size_t from = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(other.size()) - 1));
        s = s.substr(0, cut) + other.substr(from);
        break;
      }
      default: {  // truncate
        size_t keep = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(len) - 1));
        s.resize(keep);
        break;
      }
    }
  }
  return s;
}

std::string FuzzSql(uint64_t seed, int iterations, SqlFuzzStats* stats) {
  Rng rng(seed, /*stream=*/11);
  sql::Database db = MakeSqlFuzzDatabase();
  SqlFuzzStats local;

  for (int i = 0; i < iterations; ++i) {
    const std::string statement = MutateSql(rng);

    // Budgeted execution: a mutated statement that blows up into a huge
    // cross product must trip the control plane, not hang the fuzzer.
    core::ExecutionContext exec;
    exec.set_max_comparisons(200000);
    sql::ExecOptions exec_options;
    exec_options.exec = &exec;
    exec_options.allow_approximate = rng.UniformInt(0, 1) == 1;

    auto result = db.Query(statement, exec_options);
    ++local.executed;
    if (result.ok()) {
      ++local.ok;
      if (result->num_columns() == 0 && result->num_rows() != 0) {
        if (stats != nullptr) *stats = local;
        return "zero-column table with rows for statement: " + statement;
      }
    } else {
      const Status& status = result.status();
      if (status.message().empty()) {
        if (stats != nullptr) *stats = local;
        return std::string("error with empty message (code ") +
               StatusCodeToString(status.code()) +
               ") for statement: " + statement;
      }
      if (status.code() == StatusCode::kParseError) {
        ++local.parse_errors;
      } else {
        ++local.exec_errors;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return "";
}

}  // namespace galaxy::testing
