#include "testing/property_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/zipf.h"

namespace galaxy::testing {

namespace {

// Dataset-wide coordinate style. Grid styles deliberately produce many
// exactly-equal coordinates and small rational domination probabilities
// (k/total), so p == γ ties at 0.5 / 0.75 / 1.0 actually occur.
enum class CoordStyle {
  kCoarseGrid,  // multiples of 0.25
  kFineGrid,    // multiples of 0.125
  kUniform,
  kAntiCorrelated,
};

double DrawCoordinate(Rng& rng, CoordStyle style) {
  switch (style) {
    case CoordStyle::kCoarseGrid:
      return 0.25 * static_cast<double>(rng.UniformInt(0, 4));
    case CoordStyle::kFineGrid:
      return 0.125 * static_cast<double>(rng.UniformInt(0, 8));
    case CoordStyle::kUniform:
    case CoordStyle::kAntiCorrelated:
      return rng.NextDouble();
  }
  return 0.0;
}

Point DrawPoint(Rng& rng, size_t dims, CoordStyle style) {
  Point p(dims);
  for (size_t d = 0; d < dims; ++d) p[d] = DrawCoordinate(rng, style);
  if (style == CoordStyle::kAntiCorrelated && dims > 1) {
    // Push points toward the hyperplane sum == dims/2: good in one
    // dimension means bad in another, maximizing incomparable pairs.
    double sum = 0.0;
    for (size_t d = 0; d + 1 < dims; ++d) sum += p[d];
    double target = static_cast<double>(dims) / 2.0;
    p[dims - 1] = std::clamp(target - sum, 0.0, 1.0);
  }
  return p;
}

// Indexes of groups that currently have at least one record.
std::vector<size_t> NonEmptyGroups(const PointGroups& groups) {
  std::vector<size_t> out;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!groups[g].empty()) out.push_back(g);
  }
  return out;
}

}  // namespace

PointGroups GenerateAdversarialPoints(Rng& rng,
                                      const PropertyGenConfig& config) {
  GALAXY_CHECK_GE(config.min_groups, 1u);
  GALAXY_CHECK_GE(config.max_groups, config.min_groups);
  GALAXY_CHECK_GE(config.max_records_per_group, 1u);
  GALAXY_CHECK_GE(config.max_dims, 1u);

  // Bias toward low dimensionality, where domination is common and the
  // pruning shortcuts fire; still reach up to max_dims (default 8).
  size_t dims = rng.Bernoulli(0.5)
                    ? 1 + static_cast<size_t>(
                              rng.UniformInt(0, std::min<int64_t>(
                                                    2, config.max_dims - 1)))
                    : 1 + static_cast<size_t>(rng.UniformInt(
                              0, static_cast<int64_t>(config.max_dims) - 1));
  size_t num_groups = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(config.min_groups),
                     static_cast<int64_t>(config.max_groups)));
  CoordStyle style = static_cast<CoordStyle>(rng.UniformInt(0, 3));
  bool zipf_sizes = rng.Bernoulli(1.0 / 3.0);
  ZipfSampler zipf(static_cast<int64_t>(config.max_records_per_group), 1.0);

  PointGroups groups(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    size_t size;
    double shape = rng.NextDouble();
    if (config.allow_empty_groups && shape < 0.10) {
      size = 0;  // empty group: neither dominates nor is dominated
    } else if (shape < 0.25) {
      size = 1;  // singleton
    } else if (zipf_sizes) {
      size = static_cast<size_t>(zipf.Sample(rng));
    } else {
      size = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(config.max_records_per_group)));
    }
    for (size_t i = 0; i < size; ++i) {
      groups[g].push_back(DrawPoint(rng, dims, style));
    }
  }

  // Mutation: collapse one group to all-equal records (p(S≻R) is then 0 or
  // 1 against singletons, and every internal pair is kEqual).
  std::vector<size_t> non_empty = NonEmptyGroups(groups);
  if (!non_empty.empty() && rng.Bernoulli(0.15)) {
    size_t g = non_empty[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(non_empty.size()) - 1))];
    for (size_t i = 1; i < groups[g].size(); ++i) {
      groups[g][i] = groups[g][0];
    }
  }

  // Mutation: duplicate records across groups (exercises kEqual outcomes
  // and identical-MBB corner cases).
  for (size_t g = 0; g < num_groups; ++g) {
    if (groups[g].empty() || !rng.Bernoulli(0.3)) continue;
    size_t src = non_empty[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(non_empty.size()) - 1))];
    const std::vector<Point>& pool = groups[src];
    size_t k = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
    size_t dst = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(groups[g].size()) - 1));
    groups[g][dst] = pool[k];
  }

  // Mutation: place records exactly on another group's MBB corners or
  // boundaries — the inputs where the Figure 9(c) region classification is
  // decided by ties.
  non_empty = NonEmptyGroups(groups);
  if (!non_empty.empty()) {
    int corner_hits = static_cast<int>(rng.UniformInt(0, 3));
    for (int hit = 0; hit < corner_hits; ++hit) {
      size_t target = non_empty[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(non_empty.size()) - 1))];
      Point lo(dims), hi(dims);
      for (size_t d = 0; d < dims; ++d) {
        lo[d] = hi[d] = groups[target][0][d];
        for (const Point& p : groups[target]) {
          lo[d] = std::min(lo[d], p[d]);
          hi[d] = std::max(hi[d], p[d]);
        }
      }
      // A pure corner, or a mixed boundary point (min on some dimensions,
      // max on the others).
      Point boundary(dims);
      int mode = static_cast<int>(rng.UniformInt(0, 2));
      for (size_t d = 0; d < dims; ++d) {
        if (mode == 0) {
          boundary[d] = lo[d];
        } else if (mode == 1) {
          boundary[d] = hi[d];
        } else {
          boundary[d] = rng.Bernoulli(0.5) ? lo[d] : hi[d];
        }
      }
      size_t g = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(num_groups) - 1));
      if (groups[g].empty() || rng.Bernoulli(0.5)) {
        if (groups[g].size() < config.max_records_per_group) {
          groups[g].push_back(boundary);
        }
      } else {
        size_t dst = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(groups[g].size()) - 1));
        groups[g][dst] = boundary;
      }
    }
  }

  // FromPoints needs at least one record to fix the dimensionality.
  if (NonEmptyGroups(groups).empty()) {
    groups[0].push_back(DrawPoint(rng, dims, style));
  }
  return groups;
}

core::GroupedDataset PointsToDataset(const PointGroups& groups) {
  return core::GroupedDataset::FromPoints(groups);
}

core::GroupedDataset GenerateAdversarialDataset(
    Rng& rng, const PropertyGenConfig& config) {
  return PointsToDataset(GenerateAdversarialPoints(rng, config));
}

double PickAdversarialGamma(Rng& rng) {
  // ε is kept ≥ 1e-9: far enough from the threshold that double rounding
  // cannot flip a comparison for the small pair totals the generator
  // produces, close enough to catch any use of approximate thresholds.
  constexpr double kEps = 1e-9;
  switch (rng.UniformInt(0, 7)) {
    case 0:
      return 0.5;
    case 1:
      return 0.75;  // the γ̄ clamp boundary: γ̄(0.75) == 0.75 exactly
    case 2:
      return 1.0;
    case 3:
      return 0.5 + kEps;
    case 4:
      return 0.75 - kEps;
    case 5:
      return 0.75 + kEps;  // just inside the clamp region γ̄ == γ
    case 6:
      return 1.0 - kEps;
    default:
      return rng.Uniform(0.5, 1.0);
  }
}

}  // namespace galaxy::testing
