#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/catalog.h"

namespace galaxy::testing {

/// Counters of one SQL fuzz campaign.
struct SqlFuzzStats {
  uint64_t executed = 0;      ///< statements fed through the pipeline
  uint64_t ok = 0;            ///< produced a table
  uint64_t parse_errors = 0;  ///< clean lexer/parser rejections
  uint64_t exec_errors = 0;   ///< clean executor rejections (incl. budget
                              ///< trips from the control plane)
};

/// The seed corpus: well-formed SKYLINE OF statements (record and
/// aggregate form, GAMMA, GAMMA RANK, joins, unions, subqueries) that the
/// mutator perturbs. Exposed so tests can assert the seeds themselves
/// execute cleanly.
const std::vector<std::string>& SqlFuzzCorpus();

/// The fuzz database: two small deterministic tables ("movies" with
/// grouping/skyline-friendly numeric columns, "ratings" join fodder).
sql::Database MakeSqlFuzzDatabase();

/// Draws one mutated statement: a corpus seed put through 1-4 mutations
/// (byte edits, span deletion/duplication, token insertion from a SQL
/// dictionary, corpus splicing, truncation). Deterministic in `rng`.
std::string MutateSql(Rng& rng);

/// Feeds `iterations` mutated statements through the full lexer -> parser
/// -> executor pipeline under a comparison budget (so runaway cross
/// products trip the control plane instead of hanging). Every outcome must
/// be a clean Status or a well-formed table; the process aborting is the
/// failure mode this campaign exists to catch. Returns "" when clean, else
/// a description of the first malformed outcome, with the offending
/// statement.
std::string FuzzSql(uint64_t seed, int iterations,
                    SqlFuzzStats* stats = nullptr);

}  // namespace galaxy::testing

