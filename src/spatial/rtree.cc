#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "common/logging.h"

namespace galaxy::spatial {

struct RTree::Node {
  bool is_leaf = true;
  Box box;
  // Leaf payload.
  std::vector<Point> points;
  std::vector<uint32_t> ids;
  // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  explicit Node(size_t dims) : box(Box::Empty(dims)) {}

  size_t entry_count() const {
    return is_leaf ? points.size() : children.size();
  }

  void Recompute(size_t dims) {
    box = Box::Empty(dims);
    if (is_leaf) {
      for (const Point& p : points) box.Expand(p);
    } else {
      for (const auto& c : children) box.Expand(c->box);
    }
  }
};

RTree::RTree(size_t dims, size_t max_entries)
    : dims_(dims),
      max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries * 2 / 5)),
      root_(std::make_unique<Node>(dims)) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

namespace {

// Box of a single point.
Box PointBox(const Point& p) { return Box(p, p); }

}  // namespace

RTree::Node* RTree::ChooseLeaf(Node* node, const Point& point,
                               std::vector<Node*>* path) const {
  while (!node->is_leaf) {
    path->push_back(node);
    // Least volume enlargement; ties by smaller volume.
    Node* best = nullptr;
    double best_enlargement = 0.0;
    double best_volume = 0.0;
    Box pb = PointBox(point);
    for (const auto& child : node->children) {
      double volume = child->box.Volume();
      double enlargement = child->box.EnlargedVolume(pb) - volume;
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = child.get();
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    node = best;
  }
  return node;
}

void RTree::SplitNode(Node* node, std::unique_ptr<Node>* new_node) {
  // Guttman's quadratic split on the node's entries.
  auto new_half = std::make_unique<Node>(dims_);
  new_half->is_leaf = node->is_leaf;

  size_t n = node->entry_count();
  GALAXY_CHECK_GT(n, 1u);

  // Collect entry boxes.
  std::vector<Box> boxes;
  boxes.reserve(n);
  if (node->is_leaf) {
    for (const Point& p : node->points) boxes.push_back(PointBox(p));
  } else {
    for (const auto& c : node->children) boxes.push_back(c->box);
  }

  // Pick the pair of seeds wasting the most volume when grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double waste =
          boxes[i].EnlargedVolume(boxes[j]) - boxes[i].Volume() - boxes[j].Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<int> assignment(n, -1);  // 0 -> stays, 1 -> new node
  assignment[seed_a] = 0;
  assignment[seed_b] = 1;
  Box box_a = boxes[seed_a];
  Box box_b = boxes[seed_b];
  size_t count_a = 1, count_b = 1;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // Force-assign if one side must take all remaining to reach min fill.
    if (count_a + remaining == min_entries_) {
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] == -1) {
          assignment[i] = 0;
          box_a.Expand(boxes[i]);
          ++count_a;
        }
      }
      remaining = 0;
      break;
    }
    if (count_b + remaining == min_entries_) {
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] == -1) {
          assignment[i] = 1;
          box_b.Expand(boxes[i]);
          ++count_b;
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: the entry with the greatest preference for one group.
    size_t pick = 0;
    double best_diff = -1.0;
    double d_a_pick = 0.0, d_b_pick = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assignment[i] != -1) continue;
      double da = box_a.EnlargedVolume(boxes[i]) - box_a.Volume();
      double db = box_b.EnlargedVolume(boxes[i]) - box_b.Volume();
      double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d_a_pick = da;
        d_b_pick = db;
      }
    }
    int side;
    if (d_a_pick < d_b_pick) {
      side = 0;
    } else if (d_b_pick < d_a_pick) {
      side = 1;
    } else {
      side = count_a <= count_b ? 0 : 1;  // tie: smaller group
    }
    assignment[pick] = side;
    if (side == 0) {
      box_a.Expand(boxes[pick]);
      ++count_a;
    } else {
      box_b.Expand(boxes[pick]);
      ++count_b;
    }
    --remaining;
  }

  // Materialize the two halves.
  if (node->is_leaf) {
    std::vector<Point> keep_points;
    std::vector<uint32_t> keep_ids;
    for (size_t i = 0; i < n; ++i) {
      if (assignment[i] == 0) {
        keep_points.push_back(std::move(node->points[i]));
        keep_ids.push_back(node->ids[i]);
      } else {
        new_half->points.push_back(std::move(node->points[i]));
        new_half->ids.push_back(node->ids[i]);
      }
    }
    node->points = std::move(keep_points);
    node->ids = std::move(keep_ids);
  } else {
    std::vector<std::unique_ptr<Node>> keep_children;
    for (size_t i = 0; i < n; ++i) {
      if (assignment[i] == 0) {
        keep_children.push_back(std::move(node->children[i]));
      } else {
        new_half->children.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep_children);
  }
  node->Recompute(dims_);
  new_half->Recompute(dims_);
  *new_node = std::move(new_half);
}

void RTree::Insert(const Point& point, uint32_t id) {
  GALAXY_CHECK_EQ(point.size(), dims_);
  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(root_.get(), point, &path);
  leaf->points.push_back(point);
  leaf->ids.push_back(id);
  leaf->box.Expand(point);
  ++size_;

  // Split up the path as needed.
  Node* node = leaf;
  std::unique_ptr<Node> pending;
  while (node->entry_count() > max_entries_) {
    std::unique_ptr<Node> sibling;
    SplitNode(node, &sibling);
    if (path.empty()) {
      // Split the root: create a new root with the two halves.
      auto new_root = std::make_unique<Node>(dims_);
      new_root->is_leaf = false;
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      new_root->Recompute(dims_);
      root_ = std::move(new_root);
      return;
    }
    Node* parent = path.back();
    path.pop_back();
    parent->children.push_back(std::move(sibling));
    parent->Recompute(dims_);
    node = parent;
  }
  // Propagate box growth to the remaining ancestors.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    (*it)->box.Expand(point);
  }
  (void)pending;
}

void RTree::BulkLoad(const std::vector<Point>& points,
                     const std::vector<uint32_t>& ids) {
  GALAXY_CHECK(ids.empty() || ids.size() == points.size());
  size_ = points.size();
  if (points.empty()) {
    root_ = std::make_unique<Node>(dims_);
    return;
  }
  for (const Point& p : points) GALAXY_CHECK_EQ(p.size(), dims_);

  // Build all leaves with Sort-Tile-Recursive: recursively partition the
  // index order into tiles along successive dimensions.
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});

  std::vector<std::unique_ptr<Node>> level;
  size_t leaf_capacity = max_entries_;
  size_t num_leaves =
      (points.size() + leaf_capacity - 1) / leaf_capacity;

  // Recursive tiling: sort the range by dimension `dim`, then partition
  // into slabs that each receive an equal share of leaves.
  std::function<void(size_t, size_t, size_t, size_t)> tile =
      [&](size_t begin, size_t end, size_t dim, size_t leaves) {
        if (leaves <= 1 || end - begin <= leaf_capacity) {
          auto leaf = std::make_unique<Node>(dims_);
          leaf->is_leaf = true;
          for (size_t k = begin; k < end; ++k) {
            size_t idx = order[k];
            leaf->points.push_back(points[idx]);
            leaf->ids.push_back(ids.empty() ? static_cast<uint32_t>(idx)
                                            : ids[idx]);
          }
          leaf->Recompute(dims_);
          level.push_back(std::move(leaf));
          return;
        }
        std::sort(order.begin() + static_cast<long>(begin),
                  order.begin() + static_cast<long>(end),
                  [&](size_t a, size_t b) {
                    return points[a][dim] < points[b][dim];
                  });
        // Number of slabs along this dimension: ceil(leaves^(1/(d-dim))).
        size_t dims_left = dims_ - dim;
        size_t slabs =
            dims_left <= 1
                ? leaves
                : static_cast<size_t>(std::ceil(std::pow(
                      static_cast<double>(leaves), 1.0 / dims_left)));
        slabs = std::max<size_t>(1, std::min(slabs, leaves));
        size_t leaves_per_slab = (leaves + slabs - 1) / slabs;
        size_t items_per_slab = leaves_per_slab * leaf_capacity;
        size_t next_dim = dim + 1 < dims_ ? dim + 1 : dim;
        for (size_t s = begin; s < end; s += items_per_slab) {
          size_t slab_end = std::min(end, s + items_per_slab);
          size_t slab_leaves =
              (slab_end - s + leaf_capacity - 1) / leaf_capacity;
          tile(s, slab_end, next_dim, slab_leaves);
        }
      };
  tile(0, points.size(), 0, num_leaves);

  // Pack levels bottom-up until a single root remains.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size(); i += max_entries_) {
      auto parent = std::make_unique<Node>(dims_);
      parent->is_leaf = false;
      size_t end = std::min(level.size(), i + max_entries_);
      for (size_t j = i; j < end; ++j) {
        parent->children.push_back(std::move(level[j]));
      }
      parent->Recompute(dims_);
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

void RTree::WindowQuery(const Box& window, std::vector<uint32_t>* out) const {
  WindowQuery(window, [out](uint32_t id, const Point&) {
    out->push_back(id);
    return true;
  });
}

void RTree::WindowQuery(
    const Box& window,
    const std::function<bool(uint32_t, const Point&)>& visit) const {
  GALAXY_CHECK_EQ(window.dims(), dims_);
  std::vector<const Node*> stack;
  stack.push_back(root_.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->entry_count() == 0) continue;
    if (!window.Intersects(node->box)) continue;
    if (node->is_leaf) {
      for (size_t i = 0; i < node->points.size(); ++i) {
        if (window.Contains(node->points[i])) {
          if (!visit(node->ids[i], node->points[i])) return;
        }
      }
    } else {
      for (const auto& child : node->children) {
        stack.push_back(child.get());
      }
    }
  }
}

size_t RTree::WindowCount(const Box& window) const {
  size_t count = 0;
  WindowQuery(window, [&count](uint32_t, const Point&) {
    ++count;
    return true;
  });
  return count;
}

RTree::Stats RTree::GetStats() const {
  Stats stats;
  stats.size = size_;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++stats.nodes;
    if (!node->is_leaf) {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
  size_t height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++height;
    node = node->children.front().get();
  }
  stats.height = height;
  return stats;
}

bool RTree::CheckInvariants(std::string* error) const {
  size_t counted = 0;
  bool ok = true;
  std::function<void(const Node*, bool)> check = [&](const Node* node,
                                                     bool is_root) {
    if (!ok) return;
    if (!is_root && node->entry_count() < min_entries_ &&
        node->entry_count() > 0) {
      // Bulk-loaded trees may slightly underfill trailing nodes; only a
      // completely empty non-root node is an error.
    }
    if (!is_root && node->entry_count() == 0) {
      ok = false;
      if (error != nullptr) *error = "empty non-root node";
      return;
    }
    if (node->is_leaf) {
      counted += node->points.size();
      for (const Point& p : node->points) {
        if (!node->box.Contains(p)) {
          ok = false;
          if (error != nullptr) *error = "leaf box does not contain point";
          return;
        }
      }
    } else {
      for (const auto& child : node->children) {
        for (size_t i = 0; i < dims_; ++i) {
          if (child->box.min[i] < node->box.min[i] ||
              child->box.max[i] > node->box.max[i]) {
            ok = false;
            if (error != nullptr) *error = "child box escapes parent box";
            return;
          }
        }
        check(child.get(), false);
      }
    }
  };
  check(root_.get(), true);
  if (ok && counted != size_) {
    ok = false;
    if (error != nullptr) {
      *error = "size mismatch: counted " + std::to_string(counted) +
               ", recorded " + std::to_string(size_);
    }
  }
  return ok;
}

}  // namespace galaxy::spatial
