#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.h"

namespace galaxy::spatial {

/// A d-dimensional R-tree over points with integer payloads (Guttman 1984,
/// quadratic split), plus Sort-Tile-Recursive bulk loading for batch
/// construction. This is the index behind the paper's Algorithm 5: group
/// MBB max-corners are inserted, and candidate dominating groups are found
/// with axis-aligned window queries (Figure 9(a)).
class RTree {
 public:
  /// Statistics for tests and benchmarks.
  struct Stats {
    size_t size = 0;    ///< number of stored points
    size_t height = 0;  ///< levels (1 = a single leaf)
    size_t nodes = 0;   ///< total node count
  };

  /// Creates an empty tree over `dims`-dimensional points.
  /// `max_entries` is the node fan-out M (>= 4); min fill is M * 0.4.
  explicit RTree(size_t dims, size_t max_entries = 16);

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  ~RTree();

  /// Inserts one point with its payload.
  void Insert(const Point& point, uint32_t id);

  /// Builds a tree over all `points` at once using STR bulk loading;
  /// payload of points[i] is ids[i] (or i when ids is empty). Replaces any
  /// current content.
  void BulkLoad(const std::vector<Point>& points,
                const std::vector<uint32_t>& ids = {});

  /// Appends the payloads of all points inside `window` (inclusive bounds)
  /// to `out` (order unspecified).
  void WindowQuery(const Box& window, std::vector<uint32_t>* out) const;

  /// Visitor variant: invokes `visit(id, point)` for every match; if the
  /// visitor returns false the search stops early.
  void WindowQuery(
      const Box& window,
      const std::function<bool(uint32_t, const Point&)>& visit) const;

  /// Number of points inside the window.
  size_t WindowCount(const Box& window) const;

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }

  Stats GetStats() const;

  /// Validates structural invariants (MBB containment, fill factors);
  /// returns false and leaves a description in `error` on violation.
  bool CheckInvariants(std::string* error = nullptr) const;

 private:
  struct Node;

  void SplitNode(Node* node, std::unique_ptr<Node>* new_node);
  Node* ChooseLeaf(Node* node, const Point& point,
                   std::vector<Node*>* path) const;

  size_t dims_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace galaxy::spatial

