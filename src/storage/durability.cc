#include "storage/durability.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "relation/csv.h"
#include "storage/coding.h"
#include "storage/snapshot.h"

namespace galaxy::storage {

namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".gal";
constexpr std::string_view kWalPrefix = "wal-";
constexpr std::string_view kWalSuffix = ".log";

/// Parses "<prefix><decimal generation><suffix>"; nullopt-style via bool.
bool ParseGeneration(std::string_view name, std::string_view prefix,
                     std::string_view suffix, uint64_t* generation) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

}  // namespace

std::string EncodeUpdateRecord(const UpdateRecord& record) {
  std::string out;
  out.push_back(record.insert ? 1 : 0);
  PutLengthPrefixed(&out, record.table);
  out.append(record.row_csv);
  return out;
}

Result<UpdateRecord> DecodeUpdateRecord(std::string_view payload) {
  CodedReader reader(payload);
  uint8_t op = 0;
  std::string_view table;
  if (!reader.ReadU8(&op) || !reader.ReadLengthPrefixed(&table) || op > 1) {
    return Status::ParseError("corrupt update record payload");
  }
  UpdateRecord record;
  record.insert = op == 1;
  record.table.assign(table);
  record.row_csv.assign(payload.substr(reader.offset()));
  return record;
}

Status ApplyUpdateRecord(sql::Database* db, const UpdateRecord& record) {
  GALAXY_ASSIGN_OR_RETURN(std::shared_ptr<const Table> snapshot,
                          db->GetTable(record.table));
  const Table& table = *snapshot;
  GALAXY_ASSIGN_OR_RETURN(Row row,
                          ParseCsvRowForSchema(table.schema(), record.row_csv));
  // Copy-on-write at column granularity: clone the column vectors with the
  // row appended/removed instead of re-boxing every cell through rows.
  Result<Table> next = record.insert ? table.CopyWithAppended(row)
                                     : table.CopyWithRemoved(row);
  if (!next.ok()) {
    if (next.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("replayed remove matches no row in table " +
                              record.table);
    }
    return next.status();
  }
  db->Register(record.table, std::move(*next));
  return Status::OK();
}

DurabilityManager::DurabilityManager(Env* env, std::string dir,
                                     sql::Database* db,
                                     DurabilityOptions options,
                                     DurabilityMetricsHooks hooks)
    : env_(env),
      dir_(std::move(dir)),
      db_(db),
      options_(options),
      hooks_(std::move(hooks)) {}

DurabilityManager::~DurabilityManager() {
  if (wal_ != nullptr) (void)wal_->Close();
}

std::string DurabilityManager::SnapshotPath(uint64_t generation) const {
  return dir_ + "/" + std::string(kSnapshotPrefix) +
         std::to_string(generation) + std::string(kSnapshotSuffix);
}

std::string DurabilityManager::WalPath(uint64_t generation) const {
  return dir_ + "/" + std::string(kWalPrefix) + std::to_string(generation) +
         std::string(kWalSuffix);
}

WalMetricsHooks DurabilityManager::MakeWalHooks() const {
  WalMetricsHooks hooks;
  hooks.on_append = hooks_.on_wal_append;
  hooks.on_fsync = hooks_.on_wal_fsync;
  return hooks;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    Env* env, std::string dir, sql::Database* db, DurabilityOptions options,
    DurabilityMetricsHooks hooks) {
  if (db->num_tables() != 0) {
    return Status::InvalidArgument(
        "DurabilityManager::Open needs an empty database to recover into");
  }
  GALAXY_RETURN_IF_ERROR(env->CreateDirs(dir));
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(  // galaxy-lint: allow(naked-new) — private ctor, ownership moves straight into unique_ptr
          env, std::move(dir), db, options, std::move(hooks)));
  GALAXY_RETURN_IF_ERROR(manager->Recover());
  return manager;
}

Status DurabilityManager::Recover() {
  GALAXY_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));

  // Candidate generations, newest first. Generation 0 (no snapshot file)
  // is always a candidate: a fresh directory, or one that never rotated.
  std::vector<uint64_t> snapshot_gens;
  for (const std::string& name : names) {
    uint64_t generation = 0;
    if (ParseGeneration(name, kSnapshotPrefix, kSnapshotSuffix, &generation)) {
      snapshot_gens.push_back(generation);
    }
  }
  std::sort(snapshot_gens.rbegin(), snapshot_gens.rend());

  uint64_t chosen = 0;
  std::vector<SnapshotTable> tables;
  for (uint64_t generation : snapshot_gens) {
    Result<std::vector<SnapshotTable>> decoded =
        ReadSnapshotFile(env_, SnapshotPath(generation));
    if (decoded.ok()) {
      chosen = generation;
      tables = std::move(*decoded);
      break;
    }
    // A torn rotation can leave a bad newest snapshot only while the
    // previous generation (snapshot + WAL) still exists — fall back to it.
    recovery_.warnings.push_back("skipping unreadable " +
                                 SnapshotPath(generation) + ": " +
                                 decoded.status().ToString());
  }

  for (SnapshotTable& entry : tables) {
    db_->Register(entry.name, std::move(entry.table));
  }
  recovery_.generation = chosen;
  recovery_.tables_restored = tables.size();

  // Replay the WAL tail for the chosen generation. Missing file = empty
  // log (a crash between snapshot rename and WAL creation).
  const std::string wal_path = WalPath(chosen);
  std::string wal_data;
  Result<std::string> read = env_->ReadFileToString(wal_path);
  if (read.ok()) {
    wal_data = std::move(*read);
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  }
  WalDecodeResult decoded = DecodeWal(wal_data);
  for (const WalRecord& record : decoded.records) {
    if (record.type != WalRecordType::kUpdate) {
      return Status::ParseError("wal record of unknown type " +
                                std::to_string(static_cast<int>(record.type)));
    }
    GALAXY_ASSIGN_OR_RETURN(UpdateRecord update,
                            DecodeUpdateRecord(record.payload));
    GALAXY_RETURN_IF_ERROR(ApplyUpdateRecord(db_, update));
    ++recovery_.replayed_records;
  }
  if (decoded.truncated_tail) {
    // Drop the torn/corrupt tail before appending anything after it —
    // recovery stops replay at the first bad record, so bytes appended
    // beyond garbage would be unreachable.
    GALAXY_RETURN_IF_ERROR(env_->TruncateFile(wal_path, decoded.valid_bytes));
    recovery_.wal_tail_truncated = true;
    recovery_.warnings.push_back(
        "truncated torn wal tail at byte " +
        std::to_string(decoded.valid_bytes) + " of " + wal_path);
  }

  generation_ = chosen;
  GALAXY_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(env_, wal_path, options_.wal, MakeWalHooks()));
  SweepStaleFiles(chosen);
  return Status::OK();
}

void DurabilityManager::SweepStaleFiles(uint64_t keep) {
  Result<std::vector<std::string>> names = env_->ListDir(dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    uint64_t generation = 0;
    bool stale = false;
    if (ParseGeneration(name, kSnapshotPrefix, kSnapshotSuffix, &generation) ||
        ParseGeneration(name, kWalPrefix, kWalSuffix, &generation)) {
      stale = generation != keep;
    } else if (name.size() > 4 &&
               name.substr(name.size() - 4) == ".tmp") {
      stale = true;  // torn snapshot write
    }
    if (!stale) continue;
    if (env_->RemoveFile(dir_ + "/" + name).ok()) {
      recovery_.warnings.push_back("swept stale file " + name);
    }
  }
}

Status DurabilityManager::Bootstrap() { return Snapshot(); }

Status DurabilityManager::LogUpdate(const UpdateRecord& record) {
  return wal_->Append(WalRecordType::kUpdate, EncodeUpdateRecord(record));
}

Status DurabilityManager::SyncWal() { return wal_->Sync(); }

Status DurabilityManager::Snapshot() {
  const auto begin = std::chrono::steady_clock::now();
  // Everything acked so far is in the catalog (the caller serializes
  // updates with snapshots), so the dump plus an empty WAL carries the
  // full state.
  std::vector<SnapshotTable> tables;
  for (auto& [name, table] : db_->SnapshotTables()) {
    tables.push_back(SnapshotTable{name, *table});
  }
  const uint64_t next = generation_ + 1;
  GALAXY_RETURN_IF_ERROR(
      WriteSnapshotFile(env_, dir_, std::string(kSnapshotPrefix) +
                                        std::to_string(next) +
                                        std::string(kSnapshotSuffix),
                        tables));
  // snapshot-(next) is durable: switch appends to its (empty) WAL. From
  // here on failures must not roll back — the new generation is already
  // the one recovery will choose.
  GALAXY_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> next_wal,
      WalWriter::Open(env_, WalPath(next), options_.wal, MakeWalHooks()));
  std::unique_ptr<WalWriter> old_wal = std::move(wal_);
  wal_ = std::move(next_wal);
  const uint64_t previous = generation_;
  generation_ = next;
  if (old_wal != nullptr) (void)old_wal->Close();
  // Best effort: a crash (or error) leaving generation `previous` behind
  // is swept at next recovery.
  (void)env_->RemoveFile(WalPath(previous));
  (void)env_->RemoveFile(SnapshotPath(previous));
  if (hooks_.on_snapshot) {
    hooks_.on_snapshot(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin)
                           .count());
  }
  return Status::OK();
}

}  // namespace galaxy::storage
