#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace galaxy::storage {

/// Little-endian fixed-width encoding shared by the WAL and snapshot
/// formats. Byte-order is fixed (not host) so data directories can move
/// between machines.

inline void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

inline uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// A bounds-checked sequential reader over untrusted bytes. Every Read*
/// method returns false (and reads nothing) once the input is exhausted or
/// a declared length runs past the end; callers check once per field.
class CodedReader {
 public:
  explicit CodedReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (data_.size() - off_ < 1) return false;
    *v = static_cast<uint8_t>(data_[off_]);
    off_ += 1;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (data_.size() - off_ < 4) return false;
    *v = GetU32(data_.data() + off_);
    off_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (data_.size() - off_ < 8) return false;
    *v = GetU64(data_.data() + off_);
    off_ += 8;
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool ReadLengthPrefixed(std::string_view* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (data_.size() - off_ < len) return false;
    *s = data_.substr(off_, len);
    off_ += len;
    return true;
  }

  bool AtEnd() const { return off_ == data_.size(); }
  size_t offset() const { return off_; }

 private:
  std::string_view data_;
  size_t off_ = 0;
};

inline void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(v));
  PutU64(out, bits);
}

}  // namespace galaxy::storage
