#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace galaxy::storage {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + "(" + path + "): " + std::strerror(errno));
}

// ---- Posix ----------------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    // Deliberately no flush-on-destroy: an abandoned file (error paths,
    // simulated crashes in tests) must leave exactly the bytes that
    // successful Appends covered.
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  const std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= (mode == WriteMode::kTruncate) ? O_TRUNC : O_APPEND;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("open", path);
    }
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = ErrnoStatus("read", path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<bool> FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT || errno == ENOTDIR) return false;
    return ErrnoStatus("stat", path);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    if (path.empty()) return Status::InvalidArgument("empty directory path");
    std::string partial;
    size_t start = 0;
    while (start <= path.size()) {
      size_t slash = path.find('/', start);
      size_t end = (slash == std::string::npos) ? path.size() : slash;
      partial = path.substr(0, end);
      if (!partial.empty()) {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return ErrnoStatus("mkdir", partial);
        }
      }
      if (slash == std::string::npos) break;
      start = slash + 1;
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir", path);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync", path);
    ::close(fd);
    return status;
  }
};

// ---- In-memory ------------------------------------------------------------

struct MemState {
  common::Mutex mutex;
  std::map<std::string, std::string> files GUARDED_BY(mutex);
};

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<MemState> state, std::string path)
      : state_(std::move(state)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    common::MutexLock lock(&state_->mutex);
    auto it = state_->files.find(path_);
    if (it == state_->files.end()) {
      return Status::NotFound("file removed while open: " + path_);
    }
    it->second.append(data);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemState> state_;
  const std::string path_;
};

class MemEnv : public Env {
 public:
  MemEnv() : state_(std::make_shared<MemState>()) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    common::MutexLock lock(&state_->mutex);
    auto it = state_->files.find(path);
    if (it == state_->files.end()) {
      state_->files.emplace(path, "");
    } else if (mode == WriteMode::kTruncate) {
      it->second.clear();
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<MemWritableFile>(state_, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    common::MutexLock lock(&state_->mutex);
    auto it = state_->files.find(path);
    if (it == state_->files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    return it->second;
  }

  Result<bool> FileExists(const std::string& path) override {
    common::MutexLock lock(&state_->mutex);
    return state_->files.count(path) > 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    common::MutexLock lock(&state_->mutex);
    auto it = state_->files.find(path);
    if (it == state_->files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    return static_cast<uint64_t>(it->second.size());
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    common::MutexLock lock(&state_->mutex);
    auto it = state_->files.find(from);
    if (it == state_->files.end()) {
      return Status::NotFound("no such file: " + from);
    }
    state_->files[to] = std::move(it->second);
    state_->files.erase(it);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    common::MutexLock lock(&state_->mutex);
    if (state_->files.erase(path) == 0) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    common::MutexLock lock(&state_->mutex);
    auto it = state_->files.find(path);
    if (it == state_->files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    if (size < it->second.size()) it->second.resize(size);
    return Status::OK();
  }

  Status CreateDirs(const std::string&) override { return Status::OK(); }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    common::MutexLock lock(&state_->mutex);
    std::vector<std::string> names;
    for (const auto& [file, contents] : state_->files) {
      if (file.compare(0, prefix.size(), prefix) != 0) continue;
      std::string rest = file.substr(prefix.size());
      if (rest.find('/') != std::string::npos) continue;  // nested dir
      names.push_back(std::move(rest));
    }
    return names;  // map iteration order is already sorted
  }

  Status SyncDir(const std::string&) override { return Status::OK(); }

 private:
  std::shared_ptr<MemState> state_;
};

}  // namespace

Env* Env::Default() {
  // Leaked singleton: destruction order with file-scope users is otherwise
  // undefined at exit.
  static PosixEnv* env = new PosixEnv;  // galaxy-lint: allow(naked-new)
  return env;
}

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace galaxy::storage
