#include "storage/fault_env.h"

#include <unistd.h>

#include <utility>

namespace galaxy::storage {

// Named (not anonymous-namespace) so the friend declaration in the header
// grants it access to Count/Crash/ChargeDiskBudget.
class FaultInjectedWritableFile : public WritableFile {
 public:
  FaultInjectedWritableFile(FaultInjectionEnv* env,
                            std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* const env_;
  std::unique_ptr<WritableFile> base_;
};

void FaultInjectionEnv::InjectFault(const Fault& fault) {
  common::MutexLock lock(&mutex_);
  faults_.push_back(fault);
}

void FaultInjectionEnv::SetDiskFullAfterBytes(uint64_t bytes) {
  common::MutexLock lock(&mutex_);
  disk_full_armed_ = true;
  disk_budget_bytes_ = bytes;
}

void FaultInjectionEnv::ClearFaults() {
  common::MutexLock lock(&mutex_);
  faults_.clear();
  disk_full_armed_ = false;
  disk_budget_bytes_ = 0;
}

FaultInjectionEnv::Trigger FaultInjectionEnv::Count(Op op) {
  const uint64_t n =
      counts_[static_cast<size_t>(op)].fetch_add(1, std::memory_order_relaxed) +
      1;
  Trigger trigger;
  common::MutexLock lock(&mutex_);
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->op == op && it->nth == n) {
      trigger.fired = true;
      trigger.crash = it->crash;
      trigger.partial_bytes = it->partial_bytes;
      trigger.error = it->error;
      faults_.erase(it);
      break;
    }
  }
  return trigger;
}

void FaultInjectionEnv::Crash() { ::_exit(kCrashExitStatus); }

size_t FaultInjectionEnv::ChargeDiskBudget(size_t want) {
  common::MutexLock lock(&mutex_);
  if (!disk_full_armed_) return want;
  const size_t granted =
      want <= disk_budget_bytes_ ? want : static_cast<size_t>(disk_budget_bytes_);
  disk_budget_bytes_ -= granted;
  return granted;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, WriteMode mode) {
  Trigger trigger = Count(Op::kCreate);
  if (trigger.fired) {
    if (trigger.crash) Crash();
    return trigger.error;
  }
  GALAXY_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                          base_->NewWritableFile(path, mode));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectedWritableFile>(this, std::move(base)));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  Trigger trigger = Count(Op::kRename);
  if (trigger.fired) {
    if (trigger.crash) Crash();
    return trigger.error;
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  Trigger trigger = Count(Op::kRemove);
  if (trigger.fired) {
    if (trigger.crash) Crash();
    return trigger.error;
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  Trigger trigger = Count(Op::kTruncate);
  if (trigger.fired) {
    if (trigger.crash) Crash();
    return trigger.error;
  }
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  Trigger trigger = Count(Op::kSyncDir);
  if (trigger.fired) {
    if (trigger.crash) Crash();
    return trigger.error;
  }
  return base_->SyncDir(path);
}

Status FaultInjectedWritableFile::Append(std::string_view data) {
  FaultInjectionEnv::Trigger trigger =
      env_->Count(FaultInjectionEnv::Op::kAppend);
  if (trigger.fired) {
    // A short write reaches the base env before the fault lands — exactly
    // what a torn write or a crash mid-write leaves on disk.
    const size_t partial =
        trigger.partial_bytes < data.size() ? trigger.partial_bytes
                                            : data.size();
    if (partial > 0) {
      GALAXY_RETURN_IF_ERROR(base_->Append(data.substr(0, partial)));
    }
    if (trigger.crash) FaultInjectionEnv::Crash();
    return trigger.error;
  }
  const size_t granted = env_->ChargeDiskBudget(data.size());
  if (granted < data.size()) {
    if (granted > 0) {
      GALAXY_RETURN_IF_ERROR(base_->Append(data.substr(0, granted)));
    }
    return Status::ResourceExhausted("injected disk full");
  }
  return base_->Append(data);
}

Status FaultInjectedWritableFile::Sync() {
  FaultInjectionEnv::Trigger trigger =
      env_->Count(FaultInjectionEnv::Op::kSync);
  if (trigger.fired) {
    if (trigger.crash) FaultInjectionEnv::Crash();
    return trigger.error;
  }
  return base_->Sync();
}

}  // namespace galaxy::storage
