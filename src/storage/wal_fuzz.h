#pragma once

#include <cstdint>
#include <string>

namespace galaxy::storage {

/// Counters of one WAL-decoder fuzz campaign.
struct WalFuzzStats {
  uint64_t inputs = 0;             ///< log images fed to DecodeWal
  uint64_t records_decoded = 0;    ///< records the decoder accepted
  uint64_t torn_tails = 0;         ///< images decoded with a rejected tail
  uint64_t recoveries = 0;         ///< full DurabilityManager::Open rounds
};

/// Feeds `iterations` log images through DecodeWal: clean encodings (which
/// must round-trip record-for-record), truncations, byte flips, splices
/// and raw garbage. Invariants checked everywhere: the decoder never
/// crashes (run under ASan), re-encoding the accepted records reproduces
/// exactly the valid prefix it reported — so a record whose checksum did
/// not verify is never replayed — and the torn-tail flag matches the
/// prefix length. Every few rounds the same corrupted image is planted as
/// a real generation-0 WAL in an in-memory Env and recovery must start
/// successfully, replaying only acked-prefix records. Deterministic in
/// `seed`. Returns "" when the contract held, else a description of the
/// first violation.
std::string FuzzWal(uint64_t seed, int iterations,
                    WalFuzzStats* stats = nullptr);

}  // namespace galaxy::storage
