#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/catalog.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace galaxy::storage {

/// The durability manager ties the WAL and snapshots into a crash-safe
/// persistence scheme for a sql::Database:
///
///   data dir:  snapshot-<N>.gal   full typed dump of every table
///              wal-<N>.log        updates applied since snapshot N
///
/// State = snapshot-N + replay(wal-N). Generation 0 has no snapshot file
/// (the catalog starts from whatever the caller bootstraps) and wal-0.log.
///
/// Rotation (Snapshot()) writes snapshot-(N+1) atomically (tmp + fsync +
/// rename + directory sync), switches appends to a fresh wal-(N+1), then
/// deletes generation N. A crash at ANY step leaves a recoverable
/// directory: recovery picks the highest generation whose snapshot
/// decodes, treats a missing WAL as empty, truncates a torn WAL tail at
/// the first bad checksum, and sweeps files of other generations.
///
/// Thread safety: LogUpdate and Snapshot must be externally serialized
/// (the HTTP server calls both under its update mutex). The WalWriter
/// underneath is internally thread-safe, so concurrent LogUpdate calls
/// alone would be fine — it is LogUpdate racing Snapshot's WAL swap that
/// the caller must prevent.

/// One catalog mutation, exactly as the /update endpoint validates it.
/// `row_csv` stays in the request's CSV surface form; replay re-parses it
/// against the table schema with the same parser the server used
/// (relation/csv.h ParseCsvRowForSchema), so both sides agree.
struct UpdateRecord {
  std::string table;
  bool insert = true;
  std::string row_csv;
};

/// WAL payload codec for kUpdate records.
std::string EncodeUpdateRecord(const UpdateRecord& record);
Result<UpdateRecord> DecodeUpdateRecord(std::string_view payload);

/// Applies one logged update to the catalog with the serving path's exact
/// semantics: insert appends the row; remove erases the first equal row
/// (NotFound if none — acked updates always matched, so this means
/// corruption or a bug).
Status ApplyUpdateRecord(sql::Database* db, const UpdateRecord& record);

/// What recovery found and did; constant after Open.
struct RecoveryInfo {
  uint64_t generation = 0;          ///< generation recovered into
  size_t tables_restored = 0;       ///< tables loaded from the snapshot
  uint64_t replayed_records = 0;    ///< WAL records re-applied
  bool wal_tail_truncated = false;  ///< a torn/corrupt tail was dropped
  /// Non-fatal oddities (corrupt newest snapshot skipped, stale files
  /// swept, ...) for the operator's log.
  std::vector<std::string> warnings;
};

struct DurabilityOptions {
  WalWriterOptions wal;
};

/// Observability callbacks (see WalMetricsHooks for the WAL pair).
struct DurabilityMetricsHooks {
  std::function<void(uint64_t bytes)> on_wal_append;
  std::function<void(double seconds)> on_wal_fsync;
  std::function<void(double seconds)> on_snapshot;  ///< per Snapshot(), timed
};

class DurabilityManager {
 public:
  /// Opens (creating if needed) the data directory, recovers the persisted
  /// state INTO `db` — which must be empty — and leaves a WAL open for
  /// appends. `env` and `db` must outlive the manager.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      Env* env, std::string dir, sql::Database* db, DurabilityOptions options,
      DurabilityMetricsHooks hooks = {});

  /// Persists the caller's initial tables (loaded from CSV flags on first
  /// start) by taking an immediate snapshot. Call once, after Open on an
  /// empty directory and after registering the seed tables.
  Status Bootstrap();

  /// Durably logs one update per the fsync policy. The caller must not ack
  /// (nor apply) the update unless this returns OK. Once any append fails
  /// the WAL is poisoned and every later LogUpdate fails until restart.
  Status LogUpdate(const UpdateRecord& record);

  /// Rotates: snapshot of the database's current state, fresh WAL, old
  /// generation deleted. On failure (e.g. disk full) the previous
  /// generation stays intact and appends continue against the old WAL.
  Status Snapshot();

  /// Forces an fdatasync of the WAL regardless of policy.
  Status SyncWal();

  const RecoveryInfo& recovery_info() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  uint64_t generation() const { return generation_; }

  ~DurabilityManager();

 private:
  DurabilityManager(Env* env, std::string dir, sql::Database* db,
                    DurabilityOptions options, DurabilityMetricsHooks hooks);

  Status Recover();
  std::string SnapshotPath(uint64_t generation) const;
  std::string WalPath(uint64_t generation) const;
  /// Best-effort removal of every file not belonging to `keep`.
  void SweepStaleFiles(uint64_t keep);
  WalMetricsHooks MakeWalHooks() const;

  Env* const env_;
  const std::string dir_;
  sql::Database* const db_;
  const DurabilityOptions options_;
  const DurabilityMetricsHooks hooks_;

  uint64_t generation_ = 0;
  std::unique_ptr<WalWriter> wal_;
  RecoveryInfo recovery_;
};

}  // namespace galaxy::storage
