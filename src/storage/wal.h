#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace galaxy::storage {

/// The write-ahead log: CRC32C-checksummed, length-prefixed records with
/// group-commit batching and a configurable fsync policy. One record on
/// disk is
///
///   [u32 masked crc32c][u32 payload length][u8 type][payload]
///
/// (all integers little-endian; the CRC covers length + type + payload and
/// is stored masked, common/crc32c.h). Decoding tolerates a torn or
/// corrupt tail: it stops at the first record whose length runs past EOF
/// or whose checksum fails, and reports the valid prefix length so
/// recovery can truncate the garbage and keep appending.

enum class WalRecordType : uint8_t {
  kUpdate = 1,  ///< one table mutation (storage/durability.h encoding)
};

struct WalRecord {
  WalRecordType type;
  std::string payload;
};

/// Serializes one record (header + payload) onto `out`. Shared by the
/// writer and the WAL fuzz target so both sides agree on the format.
void EncodeWalRecord(WalRecordType type, std::string_view payload,
                     std::string* out);

struct WalDecodeResult {
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix (ends just after the last good
  /// record). Recovery truncates the file here before reopening it.
  uint64_t valid_bytes = 0;
  /// True when bytes beyond valid_bytes existed — a torn trailing record
  /// or corruption.
  bool truncated_tail = false;
};

/// Decodes every valid record from the head of `data`. Total: never fails,
/// never returns a record whose checksum did not verify.
WalDecodeResult DecodeWal(std::string_view data);

/// When appends are forced to stable media:
///   kAlways    fdatasync before every ack — acked updates survive OS/power
///              failure;
///   kInterval  fdatasync at most once per interval (next append past the
///              deadline pays it) — bounded-loss under OS failure;
///   kNever     no fdatasync — the OS flushes when it likes.
/// Under every policy an ack means the bytes reached the kernel, so a
/// process crash (kill -9) loses nothing acked; the policy only governs
/// machine-level crashes.
enum class FsyncPolicy { kAlways, kInterval, kNever };

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalWriterOptions {
  FsyncPolicy policy = FsyncPolicy::kAlways;
  std::chrono::milliseconds fsync_interval{100};
};

/// Observability hooks, called on the append path; must be cheap and must
/// not call back into the writer. (The serving layer points these at its
/// MetricsRegistry — src/storage cannot depend on src/server.)
struct WalMetricsHooks {
  std::function<void(uint64_t bytes)> on_append;  ///< per durable record
  std::function<void(double seconds)> on_fsync;   ///< per fdatasync, timed
};

/// Appends records with group commit: concurrent Append calls coalesce
/// into one write (and at most one fdatasync) performed by a leader while
/// followers wait; everyone returns once their record is durable per the
/// policy.
///
/// Sticky failure: after any write/sync error the log is poisoned and all
/// later Appends fail with the original error. A half-written record must
/// never get a successor — recovery truncates at the first bad record, so
/// appending past garbage would silently drop acked records behind it.
class WalWriter {
 public:
  /// Opens `path` for appending (created if missing).
  static Result<std::unique_ptr<WalWriter>> Open(Env* env, std::string path,
                                                 WalWriterOptions options,
                                                 WalMetricsHooks hooks = {});

  /// Appends one record; blocks until it is durable per the policy.
  Status Append(WalRecordType type, std::string_view payload)
      EXCLUDES(mutex_);

  /// Forces an fdatasync regardless of policy (snapshot barrier).
  Status Sync() EXCLUDES(mutex_);

  Status Close() EXCLUDES(mutex_);

  /// The sticky failure state: OK, or the first append/sync error.
  Status status() const EXCLUDES(mutex_);

 private:
  WalWriter(Env* env, std::string path, WalWriterOptions options,
            WalMetricsHooks hooks, std::unique_ptr<WritableFile> file);

  /// Leader's decision: sync now under the current policy?
  bool ShouldSync(std::chrono::steady_clock::time_point now) const
      REQUIRES(mutex_);

  /// Takes the pending batch and commits it (write + sync per policy),
  /// releasing the mutex around the file I/O (thread_pool.cc's
  /// unlock-around-body idiom). On failure poisons the log. Callers must
  /// have checked `!writing_`.
  Status CommitPending(bool force_sync) REQUIRES(mutex_);

  Env* const env_;
  const std::string path_;
  const WalWriterOptions options_;
  const WalMetricsHooks hooks_;

  mutable common::Mutex mutex_;
  common::CondVar cv_;
  std::unique_ptr<WritableFile> file_ GUARDED_BY(mutex_);
  std::string pending_ GUARDED_BY(mutex_);
  uint64_t next_seq_ GUARDED_BY(mutex_) = 0;
  uint64_t pending_max_seq_ GUARDED_BY(mutex_) = 0;
  uint64_t durable_seq_ GUARDED_BY(mutex_) = 0;
  bool writing_ GUARDED_BY(mutex_) = false;
  Status poison_ GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point last_sync_ GUARDED_BY(mutex_);
};

}  // namespace galaxy::storage
