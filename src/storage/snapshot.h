#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relation/table.h"
#include "storage/env.h"

namespace galaxy::storage {

/// Snapshot file format: a full, typed dump of every registered table.
///
///   "GALSNAP1" [u64 body length] [body] [u32 masked crc32c of body]
///
/// The body serializes each table as its name, explicit column schema and
/// typed cell values (no CSV round-trip — CSV type inference could turn a
/// DOUBLE column that happens to hold integral values back into INT64, and
/// recovery must reproduce the catalog exactly). Integers are
/// little-endian; doubles are IEEE-754 bit patterns.
///
/// A snapshot is valid only if the magic, length and checksum all verify;
/// recovery treats anything else as a torn write and falls back to the
/// previous snapshot generation.

struct SnapshotTable {
  std::string name;
  Table table;
};

/// Serializes tables into the full file image (header + body + checksum).
std::string EncodeSnapshot(const std::vector<SnapshotTable>& tables);

/// Parses and verifies a snapshot image. Any structural damage — bad
/// magic, short body, checksum mismatch, unknown value tag, type-mismatched
/// cell — fails; a successful decode is byte-exact.
Result<std::vector<SnapshotTable>> DecodeSnapshot(std::string_view data);

/// Writes a snapshot atomically: encode to `path`.tmp, fsync, rename over
/// `path`, fsync the parent directory. A crash at any point leaves either
/// no `path` or a fully valid one — never a torn file at `path`.
Status WriteSnapshotFile(Env* env, const std::string& dir,
                         const std::string& filename,
                         const std::vector<SnapshotTable>& tables);

/// Reads and decodes `path`; NotFound if absent, ParseError on corruption.
Result<std::vector<SnapshotTable>> ReadSnapshotFile(Env* env,
                                                    const std::string& path);

}  // namespace galaxy::storage
