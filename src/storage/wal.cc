#include "storage/wal.h"

#include <utility>

#include "common/crc32c.h"
#include "storage/coding.h"

namespace galaxy::storage {

namespace {

constexpr size_t kHeaderBytes = 9;  // u32 crc + u32 len + u8 type
/// Upper bound on one record's payload; anything larger in a header is
/// corruption, not data (and guards the decoder against absurd allocations).
constexpr uint32_t kMaxPayload = 1u << 30;

}  // namespace

void EncodeWalRecord(WalRecordType type, std::string_view payload,
                     std::string* out) {
  std::string body;
  body.reserve(5 + payload.size());
  PutU32(&body, static_cast<uint32_t>(payload.size()));
  body.push_back(static_cast<char>(type));
  body.append(payload);
  PutU32(out, common::Crc32cMask(common::Crc32c(body)));
  out->append(body);
}

WalDecodeResult DecodeWal(std::string_view data) {
  WalDecodeResult result;
  size_t off = 0;
  while (data.size() - off >= kHeaderBytes) {
    const char* header = data.data() + off;
    const uint32_t stored_crc = GetU32(header);
    const uint32_t len = GetU32(header + 4);
    if (len > kMaxPayload || len > data.size() - off - kHeaderBytes) {
      break;  // torn trailing record or corrupt length
    }
    const uint32_t actual =
        common::Crc32c(header + 4, 5 + static_cast<size_t>(len));
    if (common::Crc32cUnmask(stored_crc) != actual) break;
    WalRecord record;
    record.type = static_cast<WalRecordType>(header[8]);
    record.payload.assign(header + kHeaderBytes, len);
    result.records.push_back(std::move(record));
    off += kHeaderBytes + len;
  }
  result.valid_bytes = off;
  result.truncated_tail = off < data.size();
  return result;
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return Status::InvalidArgument("fsync policy must be always|interval|never, got: " +
                                 std::string(name));
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

WalWriter::WalWriter(Env* env, std::string path, WalWriterOptions options,
                     WalMetricsHooks hooks, std::unique_ptr<WritableFile> file)
    : env_(env),
      path_(std::move(path)),
      options_(options),
      hooks_(std::move(hooks)),
      file_(std::move(file)),
      last_sync_(std::chrono::steady_clock::now()) {
  (void)env_;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env, std::string path,
                                                   WalWriterOptions options,
                                                   WalMetricsHooks hooks) {
  GALAXY_ASSIGN_OR_RETURN(
      std::unique_ptr<WritableFile> file,
      env->NewWritableFile(path, Env::WriteMode::kAppend));
  return std::unique_ptr<WalWriter>(new WalWriter(  // galaxy-lint: allow(naked-new) — private ctor, ownership moves straight into unique_ptr
      env, std::move(path), options, std::move(hooks), std::move(file)));
}

bool WalWriter::ShouldSync(std::chrono::steady_clock::time_point now) const {
  switch (options_.policy) {
    case FsyncPolicy::kAlways:
      return true;
    case FsyncPolicy::kInterval:
      return now - last_sync_ >= options_.fsync_interval;
    case FsyncPolicy::kNever:
      return false;
  }
  return true;
}

Status WalWriter::CommitPending(bool force_sync) {
  writing_ = true;
  std::string batch;
  batch.swap(pending_);
  const uint64_t batch_seq = pending_max_seq_;
  const bool sync = force_sync || ShouldSync(std::chrono::steady_clock::now());
  WritableFile* file = file_.get();

  mutex_.Unlock();
  Status committed =
      batch.empty() ? Status::OK() : file->Append(batch);
  double sync_seconds = 0.0;
  if (committed.ok() && sync) {
    const auto sync_begin = std::chrono::steady_clock::now();
    committed = file->Sync();
    sync_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - sync_begin)
                       .count();
  }
  mutex_.Lock();

  writing_ = false;
  if (!committed.ok()) {
    poison_ = committed;
    cv_.NotifyAll();
    return committed;
  }
  if (batch_seq > durable_seq_) durable_seq_ = batch_seq;
  if (sync) {
    last_sync_ = std::chrono::steady_clock::now();
    if (hooks_.on_fsync) hooks_.on_fsync(sync_seconds);
  }
  cv_.NotifyAll();
  return Status::OK();
}

Status WalWriter::Append(WalRecordType type, std::string_view payload) {
  std::string record;
  EncodeWalRecord(type, payload, &record);

  common::MutexLock lock(&mutex_);
  if (!poison_.ok()) return poison_;
  if (file_ == nullptr) return Status::Internal("wal closed");
  const uint64_t seq = ++next_seq_;
  pending_ += record;
  pending_max_seq_ = seq;

  while (true) {
    if (!poison_.ok()) return poison_;
    if (durable_seq_ >= seq) {
      if (hooks_.on_append) hooks_.on_append(record.size());
      return Status::OK();
    }
    if (writing_) {
      // Another append is the leader for a batch that includes us (or our
      // batch is next); wait for it to finish.
      cv_.Wait(&mutex_);
      continue;
    }
    // Become the leader: take the whole pending batch out and commit it.
    GALAXY_RETURN_IF_ERROR(CommitPending(/*force_sync=*/false));
  }
}

Status WalWriter::Sync() {
  common::MutexLock lock(&mutex_);
  if (!poison_.ok()) return poison_;
  if (file_ == nullptr) return Status::Internal("wal closed");
  // Wait out any in-flight leader so the sync covers a quiescent file.
  while (writing_) cv_.Wait(&mutex_);
  if (!poison_.ok()) return poison_;
  return CommitPending(/*force_sync=*/true);
}

Status WalWriter::Close() {
  common::MutexLock lock(&mutex_);
  while (writing_) cv_.Wait(&mutex_);
  if (file_ == nullptr) return Status::OK();
  Status closed = file_->Close();
  file_.reset();
  return closed;
}

Status WalWriter::status() const {
  common::MutexLock lock(&mutex_);
  return poison_;
}

}  // namespace galaxy::storage
