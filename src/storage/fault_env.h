#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace galaxy::storage {

/// An Env decorator that injects disk faults and crash points: short
/// writes, EIO, disk-full, and — for the crash-torture harness — process
/// death (_exit) in the middle of an operation sequence. Every file-system
/// operation the durability layer performs is counted per kind, so a test
/// can arm "fail the 3rd fdatasync with EIO" or "write 7 bytes of the 5th
/// append, then die".
///
/// The base Env must outlive this wrapper. Thread-safe.
class FaultInjectionEnv : public Env {
 public:
  /// Operation kinds that can be counted and targeted.
  enum class Op {
    kCreate = 0,  ///< NewWritableFile
    kAppend,
    kSync,
    kRename,
    kRemove,
    kTruncate,
    kSyncDir,
    kNumOps,
  };

  /// Exit status used by crash-point faults, chosen to be distinguishable
  /// from clean exits and common signals in waitpid results.
  static constexpr int kCrashExitStatus = 86;

  struct Fault {
    Op op = Op::kAppend;
    /// 1-based occurrence of `op` (counted since the last ClearFaults /
    /// construction) that triggers.
    uint64_t nth = 1;
    /// Returned to the caller (ignored when `crash` is set).
    Status error = Status::Internal("injected fault");
    /// For kAppend: bytes written through to the base env before the fault
    /// fires — a short (torn) write.
    size_t partial_bytes = 0;
    /// Instead of returning an error, terminate the process with
    /// _exit(kCrashExitStatus) — after any partial_bytes reached the base
    /// env. This models kill -9 at the worst possible instant.
    bool crash = false;
  };

  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  void InjectFault(const Fault& fault);
  /// Appends (across all files) beyond this many further bytes fail with
  /// kResourceExhausted after a short write of the remaining budget —
  /// disk-full semantics. Cleared by ClearFaults.
  void SetDiskFullAfterBytes(uint64_t bytes);
  void ClearFaults();

  uint64_t op_count(Op op) const {
    return counts_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }

  // ---- Env ----------------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Result<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultInjectedWritableFile;

  struct Trigger {
    bool fired = false;        ///< a fault matched this operation
    bool crash = false;        ///< the fault is a crash point
    size_t partial_bytes = 0;  ///< short-write allowance for appends
    Status error;
  };

  /// Counts one operation of `op` and returns the fault to apply, if any.
  /// Crash faults do NOT exit here — the caller applies partial bytes
  /// first, then calls Crash().
  Trigger Count(Op op);
  [[noreturn]] static void Crash();

  /// Charges `want` bytes against the disk-full budget; returns how many
  /// may be written (the rest fail).
  size_t ChargeDiskBudget(size_t want);

  Env* const base_;
  std::atomic<uint64_t> counts_[static_cast<size_t>(Op::kNumOps)] = {};

  mutable common::Mutex mutex_;
  std::vector<Fault> faults_ GUARDED_BY(mutex_);
  bool disk_full_armed_ GUARDED_BY(mutex_) = false;
  uint64_t disk_budget_bytes_ GUARDED_BY(mutex_) = 0;
};

}  // namespace galaxy::storage
