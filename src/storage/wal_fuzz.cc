#include "storage/wal_fuzz.h"

#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

#include "relation/table.h"
#include "sql/catalog.h"
#include "storage/durability.h"
#include "storage/env.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace galaxy::storage {
namespace {

// Deterministic splitmix64 stream — the same generator the other fuzz
// modules use, so campaigns reproduce exactly from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

std::string RandomPayload(Rng& rng) {
  std::string out;
  const size_t len = rng.Below(120);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.Below(256)));
  }
  return out;
}

/// Applies one of several corruption styles; returns a description.
const char* Corrupt(Rng& rng, std::string* image) {
  switch (rng.Below(5)) {
    case 0:
      return "clean";
    case 1: {
      if (!image->empty()) image->resize(rng.Below(image->size()));
      return "truncated";
    }
    case 2: {
      const size_t flips = 1 + rng.Below(4);
      for (size_t i = 0; i < flips && !image->empty(); ++i) {
        (*image)[rng.Below(image->size())] ^=
            static_cast<char>(1u << rng.Below(8));
      }
      return "bit-flipped";
    }
    case 3: {
      const size_t junk = 1 + rng.Below(40);
      for (size_t i = 0; i < junk; ++i) {
        image->push_back(static_cast<char>(rng.Below(256)));
      }
      return "garbage-appended";
    }
    default: {
      image->clear();
      const size_t junk = rng.Below(200);
      for (size_t i = 0; i < junk; ++i) {
        image->push_back(static_cast<char>(rng.Below(256)));
      }
      return "pure-garbage";
    }
  }
}

std::string CheckDecode(const std::string& image, const char* style,
                        uint64_t round, WalFuzzStats* stats) {
  const WalDecodeResult decoded = DecodeWal(image);
  stats->records_decoded += decoded.records.size();
  if (decoded.truncated_tail) ++stats->torn_tails;

  auto fail = [&](const std::string& what) {
    return "round " + std::to_string(round) + " (" + style + "): " + what +
           " (image " + std::to_string(image.size()) + " bytes, " +
           std::to_string(decoded.records.size()) + " records, valid_bytes " +
           std::to_string(decoded.valid_bytes) + ")";
  };

  if (decoded.valid_bytes > image.size()) {
    return fail("valid_bytes ran past the input");
  }
  if (decoded.truncated_tail != (decoded.valid_bytes < image.size())) {
    return fail("truncated_tail disagrees with valid_bytes");
  }
  // The load-bearing property: re-encoding what the decoder accepted
  // reproduces the valid prefix byte for byte. A record that did not
  // checksum can therefore never be among the accepted ones.
  std::string reencoded;
  for (const WalRecord& record : decoded.records) {
    EncodeWalRecord(record.type, record.payload, &reencoded);
  }
  if (reencoded != std::string_view(image).substr(0, decoded.valid_bytes)) {
    return fail("accepted records do not re-encode to the valid prefix");
  }
  return "";
}

/// Plants `wal_image` as the WAL of a live generation-1 data directory
/// (snapshot = the empty seed table the updates refer to) and requires
/// recovery to start — never to refuse — replaying at most the records
/// that were acked into the image.
std::string CheckRecovery(const Schema& schema, const std::string& wal_image,
                          uint64_t acked, uint64_t round) {
  std::unique_ptr<Env> env = NewMemEnv();
  const std::string dir = "fuzz-data";
  if (!env->CreateDirs(dir).ok()) return "mem env CreateDirs failed";
  if (!WriteSnapshotFile(env.get(), dir, "snapshot-1.gal",
                         {SnapshotTable{"t", Table(schema, std::vector<Row>{})}})
           .ok()) {
    return "planting the seed snapshot failed";
  }
  {
    Result<std::unique_ptr<WritableFile>> file =
        env->NewWritableFile(dir + "/wal-1.log", Env::WriteMode::kTruncate);
    if (!file.ok() || !(*file)->Append(wal_image).ok()) {
      return "planting the wal image failed";
    }
  }
  sql::Database db;
  Result<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(env.get(), dir, &db, DurabilityOptions{});
  auto fail = [&](const std::string& what) {
    return "round " + std::to_string(round) + " (recovery): " + what;
  };
  if (!manager.ok()) {
    return fail("refused to start on a corrupt wal: " +
                manager.status().ToString());
  }
  const RecoveryInfo& info = (*manager)->recovery_info();
  if (info.replayed_records > acked) {
    return fail("replayed " + std::to_string(info.replayed_records) +
                " records but only " + std::to_string(acked) +
                " were appended — a bad-checksum record was replayed");
  }
  return "";
}

}  // namespace

std::string FuzzWal(uint64_t seed, int iterations, WalFuzzStats* stats) {
  WalFuzzStats local;
  if (stats == nullptr) stats = &local;

  // Schema of the table the recovery rounds replay into.
  const Schema schema({ColumnDef{"g", ValueType::kString},
                       ColumnDef{"x", ValueType::kInt64},
                       ColumnDef{"y", ValueType::kDouble}});

  for (int round = 0; round < iterations; ++round) {
    Rng rng(seed + static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ULL);

    const bool recovery_round = round % 4 == 3;
    std::string image;
    uint64_t encoded = 0;
    if (recovery_round) {
      // Real update records against a real (empty) table, so replay
      // exercises the full decode -> parse -> apply path. Only ackable
      // updates are logged (a remove must match a live row), mirroring
      // the server: any prefix of the log is then consistently
      // replayable.
      std::vector<std::string> live_rows;
      const uint64_t n = rng.Below(12);
      for (uint64_t i = 0; i < n; ++i) {
        UpdateRecord update;
        update.table = "t";
        if (!live_rows.empty() && rng.Below(3) == 0) {
          const size_t victim = rng.Below(live_rows.size());
          update.insert = false;
          update.row_csv = live_rows[victim];
          live_rows.erase(live_rows.begin() +
                          static_cast<ptrdiff_t>(victim));
        } else {
          update.insert = true;
          update.row_csv = "g" + std::to_string(rng.Below(4)) + "," +
                           std::to_string(rng.Below(100)) + "," +
                           std::to_string(rng.Below(100)) + ".5";
          live_rows.push_back(update.row_csv);
        }
        EncodeWalRecord(WalRecordType::kUpdate, EncodeUpdateRecord(update),
                        &image);
        ++encoded;
      }
    } else {
      const uint64_t n = rng.Below(10);
      for (uint64_t i = 0; i < n; ++i) {
        EncodeWalRecord(WalRecordType::kUpdate, RandomPayload(rng), &image);
        ++encoded;
      }
    }
    const size_t clean_size = image.size();
    const char* style = Corrupt(rng, &image);
    ++stats->inputs;

    std::string detail = CheckDecode(image, style, round, stats);
    if (!detail.empty()) return detail;

    if (std::string_view(style) == std::string_view("clean")) {
      const WalDecodeResult decoded = DecodeWal(image);
      if (decoded.records.size() != encoded ||
          decoded.valid_bytes != clean_size) {
        return "round " + std::to_string(round) +
               ": clean image did not round-trip (" +
               std::to_string(decoded.records.size()) + " of " +
               std::to_string(encoded) + " records)";
      }
    }

    if (recovery_round) {
      ++stats->recoveries;
      detail = CheckRecovery(schema, image, encoded, round);
      if (!detail.empty()) return detail;
    }
  }
  return "";
}

}  // namespace galaxy::storage
