#include "storage/snapshot.h"

#include <utility>

#include "common/crc32c.h"
#include "storage/coding.h"

namespace galaxy::storage {

namespace {

constexpr std::string_view kMagic = "GALSNAP1";
constexpr size_t kHeaderBytes = 8 + 8;  // magic + u64 body length
constexpr size_t kFooterBytes = 4;      // masked crc32c

// Cell value tags. kNull doubles as the tag for NULL cells of any column
// type; the column type byte reuses ValueType's numeric values.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void EncodeTable(const SnapshotTable& entry, std::string* body) {
  PutLengthPrefixed(body, entry.name);
  const Schema& schema = entry.table.schema();
  PutU32(body, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutLengthPrefixed(body, col.name);
    body->push_back(static_cast<char>(col.type));
  }
  PutU64(body, entry.table.num_rows());
  // The on-disk byte format is row-major tagged cells (unchanged across the
  // columnar storage refactor, so old snapshots stay readable); iterate the
  // typed columns in row order without boxing cells.
  for (size_t r = 0; r < entry.table.num_rows(); ++r) {
    for (size_t c = 0; c < entry.table.num_columns(); ++c) {
      const Column& col = entry.table.column(c);
      if (col.is_null(r) || col.type() == ValueType::kNull) {
        body->push_back(static_cast<char>(kTagNull));
        continue;
      }
      switch (col.type()) {
        case ValueType::kNull:
          break;  // handled above
        case ValueType::kInt64:
          body->push_back(static_cast<char>(kTagInt64));
          PutU64(body, static_cast<uint64_t>(col.ints()[r]));
          break;
        case ValueType::kDouble:
          body->push_back(static_cast<char>(kTagDouble));
          PutDouble(body, col.doubles()[r]);
          break;
        case ValueType::kString:
          body->push_back(static_cast<char>(kTagString));
          PutLengthPrefixed(body, col.strings()[r]);
          break;
      }
    }
  }
}

Result<SnapshotTable> DecodeTable(CodedReader* reader) {
  const Status corrupt = Status::ParseError("corrupt snapshot table");
  SnapshotTable entry;
  std::string_view name;
  if (!reader->ReadLengthPrefixed(&name)) return corrupt;
  entry.name.assign(name);

  uint32_t num_columns = 0;
  if (!reader->ReadU32(&num_columns)) return corrupt;
  std::vector<ColumnDef> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string_view col_name;
    uint8_t type = 0;
    if (!reader->ReadLengthPrefixed(&col_name) || !reader->ReadU8(&type)) {
      return corrupt;
    }
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("corrupt snapshot: unknown column type " +
                                std::to_string(type));
    }
    columns.push_back(
        ColumnDef{std::string(col_name), static_cast<ValueType>(type)});
  }

  uint64_t num_rows = 0;
  if (!reader->ReadU64(&num_rows)) return corrupt;
  TableBuilder builder{Schema(std::move(columns))};
  for (uint64_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      uint8_t tag = 0;
      if (!reader->ReadU8(&tag)) return corrupt;
      switch (tag) {
        case kTagNull:
          row.push_back(Value::Null());
          break;
        case kTagInt64: {
          uint64_t v = 0;
          if (!reader->ReadU64(&v)) return corrupt;
          row.push_back(Value(static_cast<int64_t>(v)));
          break;
        }
        case kTagDouble: {
          double v = 0;
          if (!reader->ReadDouble(&v)) return corrupt;
          row.push_back(Value(v));
          break;
        }
        case kTagString: {
          std::string_view s;
          if (!reader->ReadLengthPrefixed(&s)) return corrupt;
          row.push_back(Value(std::string(s)));
          break;
        }
        default:
          return Status::ParseError("corrupt snapshot: unknown value tag " +
                                    std::to_string(tag));
      }
    }
    GALAXY_RETURN_IF_ERROR(builder.TryAddRow(std::move(row)));
  }
  entry.table = builder.Build();
  return entry;
}

}  // namespace

std::string EncodeSnapshot(const std::vector<SnapshotTable>& tables) {
  std::string body;
  PutU32(&body, static_cast<uint32_t>(tables.size()));
  for (const SnapshotTable& entry : tables) EncodeTable(entry, &body);

  std::string out;
  out.reserve(kHeaderBytes + body.size() + kFooterBytes);
  out.append(kMagic);
  PutU64(&out, body.size());
  out.append(body);
  PutU32(&out, common::Crc32cMask(common::Crc32c(body)));
  return out;
}

Result<std::vector<SnapshotTable>> DecodeSnapshot(std::string_view data) {
  if (data.size() < kHeaderBytes + kFooterBytes ||
      data.substr(0, kMagic.size()) != kMagic) {
    return Status::ParseError("not a snapshot file (bad magic or too short)");
  }
  const uint64_t body_len = GetU64(data.data() + kMagic.size());
  if (body_len != data.size() - kHeaderBytes - kFooterBytes) {
    return Status::ParseError("corrupt snapshot: truncated body");
  }
  std::string_view body = data.substr(kHeaderBytes, body_len);
  const uint32_t stored_crc = GetU32(data.data() + kHeaderBytes + body_len);
  if (common::Crc32cUnmask(stored_crc) != common::Crc32c(body)) {
    return Status::ParseError("corrupt snapshot: checksum mismatch");
  }

  CodedReader reader(body);
  uint32_t num_tables = 0;
  if (!reader.ReadU32(&num_tables)) {
    return Status::ParseError("corrupt snapshot: missing table count");
  }
  std::vector<SnapshotTable> tables;
  tables.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables; ++t) {
    GALAXY_ASSIGN_OR_RETURN(SnapshotTable entry, DecodeTable(&reader));
    tables.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("corrupt snapshot: trailing bytes in body");
  }
  return tables;
}

Status WriteSnapshotFile(Env* env, const std::string& dir,
                         const std::string& filename,
                         const std::vector<SnapshotTable>& tables) {
  const std::string path = dir + "/" + filename;
  const std::string tmp = path + ".tmp";
  const std::string image = EncodeSnapshot(tables);
  {
    GALAXY_ASSIGN_OR_RETURN(
        std::unique_ptr<WritableFile> file,
        env->NewWritableFile(tmp, Env::WriteMode::kTruncate));
    GALAXY_RETURN_IF_ERROR(file->Append(image));
    GALAXY_RETURN_IF_ERROR(file->Sync());
    GALAXY_RETURN_IF_ERROR(file->Close());
  }
  GALAXY_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  return env->SyncDir(dir);
}

Result<std::vector<SnapshotTable>> ReadSnapshotFile(Env* env,
                                                    const std::string& path) {
  GALAXY_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  return DecodeSnapshot(data);
}

}  // namespace galaxy::storage
