#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace galaxy::storage {

/// A sequentially writable file. Append issues the write immediately (no
/// user-space buffer), so after a process crash — kill -9 included —
/// everything a successful Append covered is in the OS page cache and
/// survives. Sync() additionally forces it to stable media (fdatasync),
/// which is what the WAL's fsync policy controls.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Flushes file data to stable storage (fdatasync semantics).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The file-system abstraction every durability component goes through
/// (cf. LevelDB's Env). Production uses the Posix implementation behind
/// Env::Default(); tests and the crash-torture harness substitute
/// FaultInjectionEnv (storage/fault_env.h) or MemEnv to inject short
/// writes, EIO, disk-full, and crash points. tools/galaxy_lint rule
/// `raw-file-io` bans raw fopen/open/write/fsync outside src/storage/ so
/// this seam stays the only file-I/O path.
class Env {
 public:
  enum class WriteMode {
    kTruncate,  ///< create or truncate
    kAppend,    ///< create or append to existing contents
  };

  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) = 0;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Truncates an existing file to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Creates the directory (and missing parents). OK if it already exists.
  virtual Status CreateDirs(const std::string& path) = 0;
  /// Base names of directory entries, ascending ("." / ".." excluded).
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
  /// fsyncs the directory itself, making renames/creations durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// The process-wide Posix environment (never destroyed).
  static Env* Default();
};

/// An in-memory Env for tests and the WAL fuzz target: files are strings
/// in a map, directories are implicit, every operation is cheap and
/// hermetic. Thread-safe.
std::unique_ptr<Env> NewMemEnv();

}  // namespace galaxy::storage
