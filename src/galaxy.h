#pragma once

/// Umbrella header for the galaxy library: aggregate skyline queries
/// ("From Stars to Galaxies: skyline queries on aggregate data",
/// EDBT 2013) plus the relational, skyline, spatial and SQL substrates.
/// Include this for the full public API, or the individual headers for
/// faster builds.

#include "common/geometry.h"      // IWYU pragma: export
#include "common/rng.h"           // IWYU pragma: export
#include "common/status.h"        // IWYU pragma: export
#include "common/timer.h"         // IWYU pragma: export
#include "common/zipf.h"          // IWYU pragma: export
#include "core/adaptive.h"        // IWYU pragma: export
#include "core/aggregate_skyline.h"  // IWYU pragma: export
#include "core/domination_matrix.h"  // IWYU pragma: export
#include "core/gamma.h"           // IWYU pragma: export
#include "core/group.h"           // IWYU pragma: export
#include "core/options.h"         // IWYU pragma: export
#include "datagen/distributions.h"  // IWYU pragma: export
#include "datagen/groups.h"       // IWYU pragma: export
#include "datagen/movies.h"       // IWYU pragma: export
#include "nba/nba_gen.h"          // IWYU pragma: export
#include "relation/csv.h"         // IWYU pragma: export
#include "relation/table.h"       // IWYU pragma: export
#include "skyline/skyline.h"      // IWYU pragma: export
#include "spatial/rtree.h"        // IWYU pragma: export
#include "sql/catalog.h"          // IWYU pragma: export
#include "sql/skyline_query.h"    // IWYU pragma: export

