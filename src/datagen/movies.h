#pragma once

#include "core/group.h"
#include "relation/table.h"

namespace galaxy::datagen {

/// The paper's working example: the ten-movie table of Figure 1, verbatim,
/// with columns (Title STRING, Year INT64, Director STRING, Pop INT64,
/// Qual DOUBLE). Popularity is in thousands of votes; quality is the
/// average user rating on [0, 10].
Table MovieTable();

/// The expected Figure 2 result: record skyline of MovieTable() on
/// (Pop MAX, Qual MAX).
Table MovieSkylineTable();

/// Reconstructed filmographies behind Figure 5 / Table 2, with the four
/// directors Tarantino, Wiseau, Fleischer and Jackson. The paper computed
/// its p(S ≻ R) values on the full IMDB archive, which is not printed in
/// the paper; these hand-built (Pop, Qual) filmographies reproduce the same
/// qualitative relationships at the closest achievable fractions:
///   p(Tarantino ≻ Wiseau)    = 1.00  (paper: 1.00)
///   p(Tarantino ≻ Fleischer) = .9375 (paper: .94)
///   p(Tarantino ≻ Jackson)   = .6875 (paper: .68)
///   p(Wiseau ≻ Tarantino)    = .00   (paper: .00)
///   p(Fleischer ≻ Tarantino) = .0625 (paper: .06)
///   p(Jackson ≻ Tarantino)   = .25   (paper: .26)
core::GroupedDataset DirectorFilmographies();

/// Group labels used by DirectorFilmographies().
inline constexpr const char* kTarantino = "Tarantino";
inline constexpr const char* kWiseau = "Wiseau";
inline constexpr const char* kFleischer = "Fleischer";
inline constexpr const char* kJackson = "Jackson";

}  // namespace galaxy::datagen

