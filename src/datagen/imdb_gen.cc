#include "datagen/imdb_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace galaxy::datagen {

namespace {

const char* kGenres[] = {"Drama",  "Comedy", "Action", "Thriller",
                         "Horror", "SciFi",  "Romance", "Documentary"};
constexpr size_t kNumGenres = sizeof(kGenres) / sizeof(kGenres[0]);

std::string DirectorName(size_t index) {
  static const char* kSurnames[] = {
      "Andersson", "Bergmann", "Curtiz",   "Dmytryk", "Eastwood", "Fellini",
      "Godard",    "Huston",   "Ivory",    "Jarmusch", "Kurosawa", "Lumet",
      "Melville",  "Nichols",  "Ozu",      "Polanski", "Quine",    "Renoir",
      "Sturges",   "Truffaut", "Ulmer",    "Varda",    "Wilder",   "Yates",
      "Zinnemann"};
  constexpr size_t kNumSurnames = sizeof(kSurnames) / sizeof(kSurnames[0]);
  return std::string(kSurnames[index % kNumSurnames]) + " #" +
         std::to_string(index);
}

}  // namespace

std::vector<MovieRecord> GenerateImdbCorpus(const ImdbConfig& config) {
  GALAXY_CHECK_GT(config.target_movies, 0u);
  GALAXY_CHECK_GT(config.num_directors, 0u);
  GALAXY_CHECK_LE(config.first_year, config.last_year);
  Rng rng(config.seed, /*stream=*/31);

  // Per-director latents: quality on a roughly normal scale, fame as a
  // log-scale popularity multiplier (correlated with quality — acclaimed
  // directors draw crowds, imperfectly).
  struct DirectorProfile {
    std::string name;
    double quality;   // mean rating contribution, ~[4, 9]
    double log_fame;  // log10 of expected vote volume in thousands
    int64_t debut;
    int64_t retire;
  };
  std::vector<DirectorProfile> directors;
  directors.reserve(config.num_directors);
  const int64_t span = config.last_year - config.first_year;
  for (size_t d = 0; d < config.num_directors; ++d) {
    DirectorProfile profile;
    profile.name = DirectorName(d);
    profile.quality = std::clamp(rng.Gaussian(6.3, 0.9), 3.0, 9.3);
    profile.log_fame =
        std::clamp(rng.Gaussian(0.8, 0.8) + 0.35 * (profile.quality - 6.3),
                   -1.5, 3.0);
    profile.debut = config.first_year + rng.UniformInt(0, span);
    profile.retire =
        std::min(config.last_year,
                 profile.debut + 5 + rng.UniformInt(0, 35));
    directors.push_back(std::move(profile));
  }

  // Filmography sizes: Zipf over directors (the long tail of one-movie
  // directors the paper's Section 3.4 discusses).
  ZipfSampler zipf(static_cast<int64_t>(config.num_directors),
                   config.filmography_zipf_theta);

  std::vector<MovieRecord> movies;
  movies.reserve(config.target_movies);
  size_t title_counter = 0;
  while (movies.size() < config.target_movies) {
    size_t d = static_cast<size_t>(zipf.Sample(rng) - 1);
    const DirectorProfile& profile = directors[d];

    MovieRecord movie;
    movie.title = "Movie #" + std::to_string(++title_counter);
    movie.director = profile.name;
    movie.genre = kGenres[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(kNumGenres) - 1))];
    movie.year = profile.debut +
                 rng.UniformInt(0, std::max<int64_t>(
                                       0, profile.retire - profile.debut));
    // Rating: director latent + per-movie noise (every auteur has a flop).
    movie.rating =
        std::clamp(profile.quality + rng.Gaussian(0.0, 0.9), 1.0, 10.0);
    // Votes: log-normal around the fame latent, boosted by quality (people
    // rate movies they liked) and by recency (the online-rating era).
    double recency =
        0.4 * static_cast<double>(movie.year - config.first_year) /
        std::max<int64_t>(1, span);
    double log_votes = profile.log_fame + recency +
                       0.12 * (movie.rating - 6.0) +
                       rng.Gaussian(0.0, 0.55);
    movie.votes_thousands = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(std::pow(10.0, log_votes))));
    movies.push_back(std::move(movie));
  }
  return movies;
}

Table ToTable(const std::vector<MovieRecord>& movies) {
  TableBuilder builder{Schema({{"Title", ValueType::kString},
                               {"Director", ValueType::kString},
                               {"Genre", ValueType::kString},
                               {"Year", ValueType::kInt64},
                               {"Pop", ValueType::kInt64},
                               {"Qual", ValueType::kDouble}})};
  for (const MovieRecord& m : movies) {
    builder.AddRow(
        {m.title, m.director, m.genre, m.year, m.votes_thousands, m.rating});
  }
  return builder.Build();
}

}  // namespace galaxy::datagen
