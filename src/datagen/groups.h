#pragma once

#include <cstdint>

#include "core/group.h"
#include "datagen/distributions.h"
#include "relation/table.h"

namespace galaxy::datagen {

/// How records are assigned to groups.
enum class GroupSizeModel {
  /// Each record joins a uniformly random group ("records are uniformly
  /// distributed into classes" in the paper's experiments).
  kUniform,
  /// Group popularity follows a Zipf distribution with parameter
  /// `zipf_theta` (the heavy-tailed workload of Figure 13(a)).
  kZipf,
};

const char* GroupSizeModelToString(GroupSizeModel model);

/// Configuration of a synthetic grouped workload. The defaults mirror the
/// paper's default experimental setup (Section 4): 10 000 records, 100
/// average records per class, class spread 20% of the data space, 5
/// dimensions.
struct GroupedWorkloadConfig {
  size_t num_records = 10000;
  size_t avg_records_per_group = 100;
  size_t dims = 5;
  /// Distribution of the group centers across [0, 1]^d, which determines
  /// how groups relate to each other (anti-correlated centers => many
  /// mutually non-dominated groups).
  Distribution distribution = Distribution::kAntiCorrelated;
  /// Fraction of each dimension's extent covered by a single group's
  /// records; larger values increase the overlap between group MBBs
  /// (the x-axis of Figure 11).
  double spread = 0.2;
  GroupSizeModel size_model = GroupSizeModel::kUniform;
  double zipf_theta = 1.0;
  uint64_t seed = 42;

  /// Number of groups implied by the record budget (>= 1).
  size_t num_groups() const {
    size_t avg = avg_records_per_group == 0 ? 1 : avg_records_per_group;
    size_t n = num_records / avg;
    return n == 0 ? 1 : n;
  }
};

/// Generates a grouped dataset: group centers are drawn from
/// `config.distribution`, every record is its group's center plus a uniform
/// offset within a `spread`-sized cube (clamped to [0, 1]^d), and records
/// are assigned to groups by `size_model`. Every group receives at least
/// one record. Deterministic in `config.seed`.
core::GroupedDataset GenerateGrouped(const GroupedWorkloadConfig& config);

/// Flattens a grouped dataset into a relation with columns
/// (class STRING, num INT64, a0..a{d-1} DOUBLE) — the input shape required
/// by the paper's direct SQL formulation (Algorithm 1), which expects a
/// per-record `num` attribute holding the record's group cardinality.
Table GroupedDatasetToTable(const core::GroupedDataset& dataset);

}  // namespace galaxy::datagen

