#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/str_util.h"

namespace galaxy::datagen {

const char* DistributionToString(Distribution distribution) {
  switch (distribution) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAntiCorrelated:
      return "anticorrelated";
  }
  return "?";
}

Distribution DistributionFromString(const std::string& name) {
  std::string lower = AsciiLower(name);
  if (lower == "independent" || lower == "ind" || lower == "indep") {
    return Distribution::kIndependent;
  }
  if (lower == "correlated" || lower == "corr") {
    return Distribution::kCorrelated;
  }
  if (lower == "anticorrelated" || lower == "anti" ||
      lower == "anti-correlated") {
    return Distribution::kAntiCorrelated;
  }
  GALAXY_CHECK(false) << "unknown distribution: " << name;
  return Distribution::kIndependent;
}

namespace {

constexpr double kCorrelationNoise = 0.1;

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// Correlated: all attributes cluster around a common level v, so good
// points are good everywhere and the skyline is tiny.
Point SampleCorrelated(size_t dims, Rng& rng) {
  double v = rng.NextDouble();
  Point p(dims);
  for (size_t i = 0; i < dims; ++i) {
    // Resample out-of-range offsets a few times to avoid boundary atoms.
    double x = v + rng.Gaussian(0.0, kCorrelationNoise);
    for (int attempt = 0; attempt < 8 && (x < 0.0 || x > 1.0); ++attempt) {
      x = v + rng.Gaussian(0.0, kCorrelationNoise);
    }
    p[i] = Clamp01(x);
  }
  return p;
}

// Anti-correlated: attributes sum to an approximately constant level, so a
// point good in one attribute is bad in another and the skyline is large.
// Implementation follows the standard construction: a level v near 0.5 plus
// zero-sum offsets distributed across the dimensions.
Point SampleAntiCorrelated(size_t dims, Rng& rng) {
  double v = Clamp01(rng.Gaussian(0.5, 0.08));
  Point offsets(dims);
  double mean = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    offsets[i] = rng.NextDouble();
    mean += offsets[i];
  }
  mean /= static_cast<double>(dims);
  Point p(dims);
  for (size_t i = 0; i < dims; ++i) {
    p[i] = Clamp01(v + (offsets[i] - mean));
  }
  return p;
}

}  // namespace

Point SamplePoint(Distribution distribution, size_t dims, Rng& rng) {
  GALAXY_CHECK_GT(dims, 0u);
  switch (distribution) {
    case Distribution::kIndependent: {
      Point p(dims);
      for (size_t i = 0; i < dims; ++i) p[i] = rng.NextDouble();
      return p;
    }
    case Distribution::kCorrelated:
      return SampleCorrelated(dims, rng);
    case Distribution::kAntiCorrelated:
      return SampleAntiCorrelated(dims, rng);
  }
  return {};
}

std::vector<Point> SamplePoints(Distribution distribution, size_t dims,
                                size_t count, Rng& rng) {
  std::vector<Point> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(SamplePoint(distribution, dims, rng));
  }
  return out;
}

}  // namespace galaxy::datagen
