#include "datagen/movies.h"

namespace galaxy::datagen {

namespace {

Schema MovieSchema() {
  return Schema({{"Title", ValueType::kString},
                 {"Year", ValueType::kInt64},
                 {"Director", ValueType::kString},
                 {"Pop", ValueType::kInt64},
                 {"Qual", ValueType::kDouble}});
}

}  // namespace

Table MovieTable() {
  TableBuilder b{MovieSchema()};
  b.AddRow({"Avatar", 2009, "Cameron", 404, 8.0})
      .AddRow({"Batman Begins", 2005, "Nolan", 371, 8.3})
      .AddRow({"Kill Bill", 2003, "Tarantino", 313, 8.2})
      .AddRow({"Pulp Fiction", 1994, "Tarantino", 557, 9.0})
      .AddRow({"Star Wars (V)", 1980, "Kershner", 362, 8.8})
      .AddRow({"Terminator (II)", 1991, "Cameron", 326, 8.6})
      .AddRow({"The Godfather", 1972, "Coppola", 531, 9.2})
      .AddRow({"The Lord of the Rings", 2001, "Jackson", 518, 8.7})
      .AddRow({"The Room", 2003, "Wiseau", 10, 3.2})
      .AddRow({"Dracula", 1992, "Coppola", 76, 7.3});
  return b.Build();
}

Table MovieSkylineTable() {
  TableBuilder b{MovieSchema()};
  b.AddRow({"Pulp Fiction", 1994, "Tarantino", 557, 9.0})
      .AddRow({"The Godfather", 1972, "Coppola", 531, 9.2});
  return b.Build();
}

core::GroupedDataset DirectorFilmographies() {
  // Coordinates are (Pop, Qual). The structure is engineered so that the
  // pairwise domination counts hit the Table 2 targets; see movies.h.
  std::vector<std::vector<Point>> groups = {
      // Tarantino: three top-tier movies that dominate Jackson's trilogy,
      // three mid-tier ones, and two weak ones.
      {{650, 9.2},   // Pulp Fiction
       {600, 9.1},   // Kill Bill
       {580, 9.0},   // Inglourious Basterds
       {520, 7.9},   // Jackie Brown
       {500, 8.0},   // Reservoir Dogs
       {800, 7.5},   // Django Unchained (very popular, mid quality)
       {150, 6.8},   // Death Proof
       {200, 7.0}},  // Four Rooms
      // Wiseau: strictly dominated by every Tarantino movie.
      {{10, 3.2},   // The Room
       {15, 2.5}},  // Best F(r)iends
      // Fleischer: three movies below all of Tarantino plus Zombieland,
      // which beats Tarantino's two weak movies and loses to six.
      {{400, 7.4},   // Zombieland
       {100, 5.5},   // Gangster Squad
       {80, 6.0},    // 30 Minutes or Less
       {120, 4.5}},  // Venom
      // Jackson: the LOTR trilogy (each dominated by Tarantino's top three
      // and dominating his mid/weak four) plus three early splatter movies
      // dominated by all of Tarantino.
      {{533, 8.7},   // The Fellowship of the Ring
       {523, 8.6},   // The Two Towers
       {535, 8.9},   // The Return of the King
       {140, 6.0},   // Bad Taste
       {100, 5.5},   // Meet the Feebles
       {120, 6.5}},  // Braindead
  };
  return core::GroupedDataset::FromPoints(
      groups, {kTarantino, kWiseau, kFleischer, kJackson});
}

}  // namespace galaxy::datagen
