#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/rng.h"

namespace galaxy::datagen {

/// The three classic skyline benchmark distributions of Börzsönyi et al.
/// (ICDE 2001), reused by the paper's synthetic experiments.
enum class Distribution {
  /// Every attribute i.i.d. uniform in [0, 1].
  kIndependent,
  /// Attributes positively correlated: points concentrate around the
  /// diagonal, so few points (and few groups) are Pareto-optimal.
  kCorrelated,
  /// Attributes negatively correlated: points concentrate around the
  /// anti-diagonal hyperplane, maximizing the skyline size — the hardest
  /// case for skyline algorithms.
  kAntiCorrelated,
};

const char* DistributionToString(Distribution distribution);

/// Parses "independent" / "correlated" / "anticorrelated" (and the short
/// forms "ind"/"corr"/"anti"); aborts on anything else.
Distribution DistributionFromString(const std::string& name);

/// Draws one point of the given dimensionality in [0, 1]^d.
Point SamplePoint(Distribution distribution, size_t dims, Rng& rng);

/// Draws `count` points.
std::vector<Point> SamplePoints(Distribution distribution, size_t dims,
                                size_t count, Rng& rng);

}  // namespace galaxy::datagen

