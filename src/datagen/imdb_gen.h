#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relation/table.h"

namespace galaxy::datagen {

/// One synthetic movie record, shaped like the paper's IMDB working data
/// (Figure 1): popularity in thousands of votes and quality as an average
/// user rating on [0, 10].
struct MovieRecord {
  std::string title;
  std::string director;
  std::string genre;
  int64_t year = 0;
  int64_t votes_thousands = 0;
  double rating = 0.0;
};

/// Configuration of the IMDB-scale corpus. Defaults give a corpus in the
/// spirit of the paper's examples: a few thousand directors with
/// Zipf-distributed filmography sizes, vote counts heavy-tailed across
/// five orders of magnitude, and ratings correlated with a per-director
/// quality latent (auteurs exist) plus per-movie noise.
struct ImdbConfig {
  size_t target_movies = 20000;
  size_t num_directors = 2500;
  double filmography_zipf_theta = 0.8;
  int64_t first_year = 1950;
  int64_t last_year = 2012;
  uint64_t seed = 1894;
};

/// Generates the corpus. Deterministic in `config.seed`.
std::vector<MovieRecord> GenerateImdbCorpus(const ImdbConfig& config = {});

/// Flattens the corpus into a relation with columns (Title STRING,
/// Director STRING, Genre STRING, Year INT64, Pop INT64, Qual DOUBLE) —
/// the Figure 1 schema plus Genre.
Table ToTable(const std::vector<MovieRecord>& movies);

}  // namespace galaxy::datagen

