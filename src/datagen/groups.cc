#include "datagen/groups.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/zipf.h"

namespace galaxy::datagen {

const char* GroupSizeModelToString(GroupSizeModel model) {
  switch (model) {
    case GroupSizeModel::kUniform:
      return "uniform";
    case GroupSizeModel::kZipf:
      return "zipf";
  }
  return "?";
}

core::GroupedDataset GenerateGrouped(const GroupedWorkloadConfig& config) {
  GALAXY_CHECK_GT(config.num_records, 0u);
  GALAXY_CHECK_GT(config.dims, 0u);
  GALAXY_CHECK_GE(config.spread, 0.0);
  GALAXY_CHECK_LE(config.spread, 1.0);

  const size_t num_groups = config.num_groups();
  GALAXY_CHECK_GE(config.num_records, num_groups)
      << "need at least one record per group";
  Rng rng(config.seed, /*stream=*/7);

  // Group centers, kept inside the space so the spread cube mostly fits.
  std::vector<Point> centers;
  centers.reserve(num_groups);
  const double half = config.spread / 2.0;
  for (size_t g = 0; g < num_groups; ++g) {
    Point c = SamplePoint(config.distribution, config.dims, rng);
    for (double& v : c) v = half + v * (1.0 - config.spread);
    centers.push_back(std::move(c));
  }

  // Record-to-group assignment: one guaranteed record per group, the rest
  // by the configured size model.
  std::vector<size_t> assignment(config.num_records);
  for (size_t g = 0; g < num_groups; ++g) assignment[g] = g;
  if (config.size_model == GroupSizeModel::kUniform) {
    for (size_t r = num_groups; r < config.num_records; ++r) {
      assignment[r] = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(num_groups) - 1));
    }
  } else {
    ZipfSampler zipf(static_cast<int64_t>(num_groups), config.zipf_theta);
    for (size_t r = num_groups; r < config.num_records; ++r) {
      assignment[r] = static_cast<size_t>(zipf.Sample(rng) - 1);
    }
  }

  // Records: center + uniform offset within the spread cube.
  std::vector<std::vector<Point>> groups(num_groups);
  for (size_t r = 0; r < config.num_records; ++r) {
    const Point& c = centers[assignment[r]];
    Point p(config.dims);
    for (size_t i = 0; i < config.dims; ++i) {
      p[i] = std::clamp(c[i] + rng.Uniform(-half, half), 0.0, 1.0);
    }
    groups[assignment[r]].push_back(std::move(p));
  }

  return core::GroupedDataset::FromPoints(groups);
}

Table GroupedDatasetToTable(const core::GroupedDataset& dataset) {
  std::vector<ColumnDef> columns;
  columns.push_back({"class", ValueType::kString});
  columns.push_back({"num", ValueType::kInt64});
  for (size_t i = 0; i < dataset.dims(); ++i) {
    columns.push_back({"a" + std::to_string(i), ValueType::kDouble});
  }
  TableBuilder builder{Schema(std::move(columns))};
  for (const core::Group& g : dataset.groups()) {
    for (size_t r = 0; r < g.size(); ++r) {
      Row row;
      row.reserve(2 + dataset.dims());
      row.emplace_back(g.label());
      row.emplace_back(static_cast<int64_t>(g.size()));
      auto p = g.point(r);
      for (double v : p) row.emplace_back(v);
      builder.AddRow(std::move(row));
    }
  }
  return builder.Build();
}

}  // namespace galaxy::datagen
