#pragma once

#include <cstdint>

namespace galaxy {

/// A PCG32 pseudo-random generator (O'Neill, pcg-random.org; XSH-RR output
/// on a 64-bit LCG state). Deterministic across platforms and compilers,
/// unlike the std:: distributions, which is essential for reproducible
/// experiment workloads. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint32_t;

  /// Seeds the generator; equal (seed, stream) pairs yield equal sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32 random bits.
  uint32_t operator()() { return Next32(); }
  uint32_t Next32();

  /// Next 64 random bits (two 32-bit draws).
  uint64_t Next64();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi. Uses
  /// Lemire-style rejection to avoid modulo bias.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate via Box-Muller (deterministic across
  /// platforms). Mean 0, standard deviation 1.
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential variate with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace galaxy

