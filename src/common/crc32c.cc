#include "common/crc32c.h"

#include <array>

namespace galaxy::common {

namespace {

/// 8 tables of 256 entries, built once at startup: table[0] is the plain
/// byte-at-a-time table for the reflected Castagnoli polynomial; table[k]
/// advances a CRC past k additional zero bytes, which is what lets the hot
/// loop fold 8 input bytes per iteration (slicing-by-8).
struct Tables {
  uint32_t t[8][256];

  Tables() {
    constexpr uint32_t kPoly = 0x82f63b78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tab = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align to 8 bytes so the 64-bit loads below are aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    word = __builtin_bswap64(word);
#endif
    word ^= crc;
    crc = tab.t[7][word & 0xff] ^ tab.t[6][(word >> 8) & 0xff] ^
          tab.t[5][(word >> 16) & 0xff] ^ tab.t[4][(word >> 24) & 0xff] ^
          tab.t[3][(word >> 32) & 0xff] ^ tab.t[2][(word >> 40) & 0xff] ^
          tab.t[1][(word >> 48) & 0xff] ^ tab.t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace galaxy::common
