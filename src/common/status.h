#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace galaxy {

/// Error categories used across the library. The library does not throw
/// exceptions across API boundaries; fallible operations return a Status or
/// a Result<T> instead (see the Arrow / RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeError,
  /// The run was cancelled cooperatively via ExecutionContext::RequestCancel
  /// (see core/exec_context.h). Partial results are discarded unless the
  /// caller opted into approximate degradation.
  kCancelled,
  /// The wall-clock deadline of the governing ExecutionContext expired
  /// before the run finished.
  kDeadlineExceeded,
  /// A resource budget of the governing ExecutionContext was exhausted
  /// (record-comparison cap or resident-memory cap).
  kResourceExhausted,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. An OK status carries no message and
/// no allocation; error statuses carry a code and a message describing what
/// went wrong.
///
/// [[nodiscard]]: silently dropping a Status swallows errors, so every
/// ignored return is a compile warning (-Werror in CI). Consume with
/// GALAXY_RETURN_IF_ERROR, a check, or an explicit (void) cast plus a
/// comment for the rare fire-and-forget call.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error union: holds either a T (success) or an error Status.
/// Accessing the value of an errored Result aborts, so callers must check
/// ok() (or use GALAXY_ASSIGN_OR_RETURN) first. [[nodiscard]] for the same
/// reason as Status: an ignored Result is a swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing a Result from
  /// an OK status is a programming error and is converted to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when the result holds a value.
  Status status() const { return ok() ? Status::OK() : status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(status_);
}

}  // namespace galaxy

/// Propagates an error status from an expression returning Status.
#define GALAXY_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::galaxy::Status galaxy_status__ = (expr);        \
    if (!galaxy_status__.ok()) return galaxy_status__; \
  } while (false)

#define GALAXY_CONCAT_IMPL_(x, y) x##y
#define GALAXY_CONCAT_(x, y) GALAXY_CONCAT_IMPL_(x, y)

/// Evaluates an expression returning Result<T>; on success assigns the value
/// to `lhs`, on error returns the error status from the enclosing function.
#define GALAXY_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  GALAXY_ASSIGN_OR_RETURN_IMPL_(                                    \
      GALAXY_CONCAT_(galaxy_result__, __LINE__), lhs, rexpr)

#define GALAXY_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

