#pragma once

/// Portable Clang thread-safety-analysis annotations (the Abseil /
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html vocabulary).
///
/// Under Clang with -Wthread-safety these expand to the capability
/// attributes and the locking discipline becomes a compile-time proof
/// obligation: every access to a GUARDED_BY member must happen with the
/// named capability held, every REQUIRES function must be called with it
/// held, and ACQUIRE/RELEASE mismatches are build errors. Under every
/// other compiler they expand to nothing, so annotated code stays
/// portable.
///
/// Use the wrappers in common/mutex.h rather than raw std::mutex members:
/// libstdc++'s mutex types carry no attributes, so only the annotated
/// wrappers give the analysis anything to check (enforced by
/// tools/galaxy_lint rule `raw-mutex`).

#if defined(__clang__) && !defined(SWIG)
#define GALAXY_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GALAXY_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) GALAXY_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY GALAXY_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be accessed while `x` is held.
#define GUARDED_BY(x) GALAXY_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* may only be accessed while `x` is held.
#define PT_GUARDED_BY(x) GALAXY_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capabilities exclusively / shared.
#define REQUIRES(...) \
  GALAXY_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GALAXY_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and does not
/// release it before returning.
#define ACQUIRE(...) \
  GALAXY_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GALAXY_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which the caller must hold).
#define RELEASE(...) \
  GALAXY_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GALAXY_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  GALAXY_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the return value
/// that signals success.
#define TRY_ACQUIRE(...) \
  GALAXY_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  GALAXY_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (anti-deadlock: non-reentrancy).
#define EXCLUDES(...) GALAXY_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Capability ordering: this capability must be acquired before / after
/// the named ones.
#define ACQUIRED_BEFORE(...) \
  GALAXY_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  GALAXY_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) GALAXY_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (tells the analysis so).
#define ASSERT_CAPABILITY(x) GALAXY_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  GALAXY_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Escape hatch for code whose safety argument the analysis cannot see
/// (e.g. locking both operands of a move in address order). Every use
/// must carry a comment with the manual proof.
#define NO_THREAD_SAFETY_ANALYSIS \
  GALAXY_THREAD_ANNOTATION_(no_thread_safety_analysis)
