#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace galaxy {
namespace internal {

/// Accumulates a fatal-check message and aborts the process on destruction.
/// Used by the GALAXY_CHECK family below; not part of the public API.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " Check failed: " << condition << " ";
  }

  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace galaxy

/// Aborts with a diagnostic if `condition` is false. Enabled in all builds;
/// use for invariants whose violation means memory corruption or API misuse.
#define GALAXY_CHECK(condition)                                            \
  while (!(condition))                                                     \
  ::galaxy::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define GALAXY_CHECK_EQ(a, b) GALAXY_CHECK((a) == (b))
#define GALAXY_CHECK_NE(a, b) GALAXY_CHECK((a) != (b))
#define GALAXY_CHECK_LT(a, b) GALAXY_CHECK((a) < (b))
#define GALAXY_CHECK_LE(a, b) GALAXY_CHECK((a) <= (b))
#define GALAXY_CHECK_GT(a, b) GALAXY_CHECK((a) > (b))
#define GALAXY_CHECK_GE(a, b) GALAXY_CHECK((a) >= (b))

/// Debug-only checks, compiled out in release builds.
#ifdef NDEBUG
#define GALAXY_DCHECK(condition) \
  while (false) GALAXY_CHECK(condition)
#else
#define GALAXY_DCHECK(condition) GALAXY_CHECK(condition)
#endif

