#include "common/geometry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/str_util.h"

namespace galaxy {

void Box::Expand(std::span<const double> p) {
  GALAXY_DCHECK(p.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    min[i] = std::min(min[i], p[i]);
    max[i] = std::max(max[i], p[i]);
  }
}

void Box::Expand(const Box& other) {
  GALAXY_DCHECK(other.dims() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    min[i] = std::min(min[i], other.min[i]);
    max[i] = std::max(max[i], other.max[i]);
  }
}

bool Box::Contains(std::span<const double> p) const {
  GALAXY_DCHECK(p.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    if (p[i] < min[i] || p[i] > max[i]) return false;
  }
  return true;
}

bool Box::Intersects(const Box& other) const {
  GALAXY_DCHECK(other.dims() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    if (min[i] > other.max[i] || other.min[i] > max[i]) return false;
  }
  return true;
}

double Box::Volume() const {
  double v = 1.0;
  for (size_t i = 0; i < dims(); ++i) {
    double side = max[i] - min[i];
    if (side <= 0.0) return 0.0;
    v *= side;
  }
  return v;
}

double Box::Margin() const {
  double m = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    m += std::max(0.0, max[i] - min[i]);
  }
  return m;
}

double Box::EnlargedVolume(const Box& other) const {
  GALAXY_DCHECK(other.dims() == dims());
  double v = 1.0;
  for (size_t i = 0; i < dims(); ++i) {
    double lo = std::min(min[i], other.min[i]);
    double hi = std::max(max[i], other.max[i]);
    v *= std::max(0.0, hi - lo);
  }
  return v;
}

double Box::CornerDistanceSum() const {
  double s = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    s += std::abs(min[i]) + std::abs(max[i]);
  }
  return s;
}

std::string Box::ToString() const {
  std::string out = "[(";
  for (size_t i = 0; i < dims(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(min[i]);
  }
  out += "), (";
  for (size_t i = 0; i < dims(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(max[i]);
  }
  out += ")]";
  return out;
}

double IntersectionVolume(const Box& a, const Box& b) {
  GALAXY_DCHECK(a.dims() == b.dims());
  double v = 1.0;
  for (size_t i = 0; i < a.dims(); ++i) {
    double lo = std::max(a.min[i], b.min[i]);
    double hi = std::min(a.max[i], b.max[i]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

}  // namespace galaxy
