#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

/// Annotated mutex wrappers: the capability types that Clang's
/// -Wthread-safety analysis reasons about. libstdc++'s std::mutex carries
/// no capability attributes, so raw standard mutexes are invisible to the
/// analysis; every mutex member in this codebase uses these wrappers
/// instead (tools/galaxy_lint rule `raw-mutex` enforces it). The wrappers
/// are zero-cost: each is exactly the standard type plus attributes —
/// except under -DGALAXY_DEBUG_LOCK_ORDER=ON, where every acquisition
/// also feeds the runtime lock-order validator (common/lock_order.h).
/// The validator hooks run *before* blocking, so an ordering violation
/// aborts with a report instead of hanging in a real deadlock. Shared
/// (reader) acquisitions feed the same order graph: reader/writer cycles
/// deadlock just like exclusive ones.
namespace galaxy::common {

class CondVar;

/// An exclusive capability wrapping std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { lock_order::OnDestroy(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(this);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lock_order::OnRelease(this);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired) lock_order::OnAcquire(this);
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex mu_;  // galaxy-lint: allow(raw-mutex) — the wrapper itself
};

/// A reader/writer capability wrapping std::shared_mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex() { lock_order::OnDestroy(this); }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(this);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    lock_order::OnRelease(this);
    mu_.unlock();
  }
  bool TryLock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired) lock_order::OnAcquire(this);
    return acquired;
  }

  void ReaderLock() ACQUIRE_SHARED() {
    lock_order::OnAcquire(this);
    mu_.lock_shared();
  }
  void ReaderUnlock() RELEASE_SHARED() {
    lock_order::OnRelease(this);
    mu_.unlock_shared();
  }
  bool ReaderTryLock() TRY_ACQUIRE_SHARED(true) {
    const bool acquired = mu_.try_lock_shared();
    if (acquired) lock_order::OnAcquire(this);
    return acquired;
  }

 private:
  std::shared_mutex mu_;  // galaxy-lint: allow(raw-mutex) — the wrapper itself
};

/// RAII exclusive critical section over a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive (writer) critical section over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) critical section over a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable paired with Mutex. There are deliberately no
/// predicate overloads: the analysis cannot see a capability held across
/// a lambda boundary, so callers write the standard re-check loop in the
/// function that visibly holds the Mutex —
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks, and re-acquires before returning.
  /// May wake spuriously — always re-check the condition in a loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's critical section continues
  }

  /// Wait() with a wakeup deadline. Returns std::cv_status::timeout when
  /// the deadline passed (the condition must still be re-checked: a slot
  /// may have been signalled between expiry and re-acquisition).
  std::cv_status WaitUntil(Mutex* mu,
                           std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // galaxy-lint: allow(raw-mutex) — the wrapper itself
  std::condition_variable cv_;
};

}  // namespace galaxy::common
