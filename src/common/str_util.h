#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace galaxy {

/// Splits `input` on every occurrence of `delim`. Adjacent delimiters yield
/// empty pieces; an empty input yields a single empty piece.
std::vector<std::string> StrSplit(std::string_view input, char delim);

/// Joins the pieces with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view input);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string AsciiLower(std::string_view input);

/// ASCII upper-casing.
std::string AsciiUpper(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with up to `precision` significant fraction digits,
/// trimming trailing zeros ("8.30" -> "8.3", "5.00" -> "5").
std::string FormatDouble(double value, int precision = 6);

}  // namespace galaxy

