#pragma once

/// Runtime lock-order validator (the dynamic counterpart of
/// galaxy_analyze's static `lock-order` rule). Compiled in only under
/// -DGALAXY_DEBUG_LOCK_ORDER=ON; otherwise every hook is an empty inline
/// and the mutex wrappers stay zero-cost.
///
/// Each thread keeps a stack of the locks it currently holds. Acquiring a
/// lock records an edge held -> acquired (with the acquiring backtrace)
/// into a global acquisition-order graph keyed by mutex address. An edge
/// that would close a cycle — or a recursive acquisition of a
/// non-recursive mutex — aborts the process, printing the backtrace of the
/// new edge and of the first recorded edge on the conflicting path. Unlike
/// a deadlock, an *ordering* violation is caught on the first run that
/// exercises both sides, even if the threads never actually collide; CI
/// runs the TSan job with the validator on to cross-check the static rule.
namespace galaxy::common::lock_order {

#ifdef GALAXY_DEBUG_LOCK_ORDER
/// Called before blocking on `mu` (and after a successful TryLock).
/// Aborts on a recursive acquisition or an order cycle.
void OnAcquire(const void* mu);
/// Called before releasing `mu`; removes it from the thread's held stack.
void OnRelease(const void* mu);
/// Called from the mutex destructor; purges the node so a later object at
/// the same address cannot inherit stale edges.
void OnDestroy(const void* mu);
#else
inline void OnAcquire(const void*) {}
inline void OnRelease(const void*) {}
inline void OnDestroy(const void*) {}
#endif

}  // namespace galaxy::common::lock_order
