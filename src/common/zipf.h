#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace galaxy {

/// Samples ranks 1..n with probability proportional to 1 / rank^theta
/// (a Zipf / zeta distribution truncated to n outcomes). theta = 0 degrades
/// to the uniform distribution; theta around 1 matches the heavy-tailed
/// group-size distributions discussed in Section 3.4 of the paper.
///
/// Implementation: a precomputed CDF with binary-search inversion, O(n)
/// setup and O(log n) per sample. For the n used in the experiments
/// (thousands of groups) this is both exact and fast.
class ZipfSampler {
 public:
  /// Builds the sampler for ranks 1..n; requires n >= 1 and theta >= 0.
  ZipfSampler(int64_t n, double theta);

  /// Draws a rank in [1, n].
  int64_t Sample(Rng& rng) const;

  /// Probability mass of a given rank in [1, n].
  double Probability(int64_t rank) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k + 1)
};

}  // namespace galaxy

