#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace galaxy {

ZipfSampler::ZipfSampler(int64_t n, double theta) : n_(n), theta_(theta) {
  GALAXY_CHECK_GE(n, 1);
  GALAXY_CHECK_GE(theta, 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), theta);
    cdf_[static_cast<size_t>(k - 1)] = total;
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Probability(int64_t rank) const {
  GALAXY_CHECK_GE(rank, 1);
  GALAXY_CHECK_LE(rank, n_);
  size_t i = static_cast<size_t>(rank - 1);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace galaxy
