#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace galaxy {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  Next32();
  state_ += seed;
  Next32();
}

uint32_t Rng::Next32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

uint64_t Rng::Next64() {
  uint64_t hi = Next32();
  uint64_t lo = Next32();
  return (hi << 32) | lo;
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GALAXY_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  // Rejection sampling on the top of the range to remove modulo bias.
  uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % range);
  uint64_t draw;
  do {
    draw = Next64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; avoids u1 == 0 to keep the log finite.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double two_pi_u2 = 2.0 * M_PI * u2;
  cached_gaussian_ = mag * std::sin(two_pi_u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(two_pi_u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::Exponential(double lambda) {
  GALAXY_CHECK_GT(lambda, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  return NextDouble() < p;
}

}  // namespace galaxy
