#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace galaxy {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace galaxy
