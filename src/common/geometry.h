#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace galaxy {

/// A point in d-dimensional attribute space. All skyline attributes are
/// normalized to doubles; preference direction (MIN/MAX) is handled by the
/// dominance predicates, not by the geometry.
using Point = std::vector<double>;

/// An axis-aligned d-dimensional box, used for group minimum bounding boxes
/// (MBBs) and R-tree node rectangles.
struct Box {
  Point min;
  Point max;

  Box() = default;
  Box(Point min_corner, Point max_corner)
      : min(std::move(min_corner)), max(std::move(max_corner)) {}

  /// An "empty" box whose corners are set so that the first Expand snaps to
  /// the expanding geometry.
  static Box Empty(size_t dims) {
    Box b;
    b.min.assign(dims, std::numeric_limits<double>::infinity());
    b.max.assign(dims, -std::numeric_limits<double>::infinity());
    return b;
  }

  size_t dims() const { return min.size(); }

  bool IsEmpty() const {
    for (size_t i = 0; i < dims(); ++i) {
      if (min[i] > max[i]) return true;
    }
    return dims() == 0;
  }

  /// Grows the box to cover `p`.
  void Expand(std::span<const double> p);

  /// Grows the box to cover `other`.
  void Expand(const Box& other);

  /// True if `p` lies inside (inclusive) the box.
  bool Contains(std::span<const double> p) const;

  /// True if the boxes share at least one point (inclusive boundaries).
  bool Intersects(const Box& other) const;

  /// Volume (product of side lengths); 0 for degenerate boxes.
  double Volume() const;

  /// Half-perimeter: sum of side lengths; the R-tree split heuristic metric.
  double Margin() const;

  /// The volume of the smallest box covering both this box and `other`.
  double EnlargedVolume(const Box& other) const;

  /// L1 norm of the min corner plus L1 norm of the max corner; the group
  /// ordering key of the paper's sorted algorithm (Algorithm 4).
  double CornerDistanceSum() const;

  bool operator==(const Box& other) const {
    return min == other.min && max == other.max;
  }

  std::string ToString() const;
};

/// Volume of the intersection of two boxes (0 if disjoint).
double IntersectionVolume(const Box& a, const Box& b);

}  // namespace galaxy

