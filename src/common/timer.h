#pragma once

#include <chrono>

namespace galaxy {

/// A simple monotonic wall-clock stopwatch used by the benchmark harnesses
/// and operator statistics.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace galaxy

