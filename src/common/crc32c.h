#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace galaxy::common {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum guarding every write-ahead-log record and snapshot section in
/// src/storage/. Software slicing-by-8 implementation: no SSE4.2
/// dependency, ~1 byte/cycle, identical results on every platform.
///
/// Extend() lets callers checksum discontiguous buffers (header + payload)
/// without copying:
///
///   uint32_t crc = Crc32c(header, header_len);
///   crc = Crc32cExtend(crc, payload, payload_len);
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

/// Masked form for values stored alongside the data they checksum (the
/// LevelDB trick): checksumming bytes that themselves contain a CRC tends
/// to produce systematically weak checksums, so stored CRCs are rotated and
/// offset. Verification unmasks first.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace galaxy::common
