// galaxy-lint: allow-file(raw-mutex) — the validator guards its own graph
// and cannot instrument itself (the hooks would recurse).
#include "common/lock_order.h"

#ifdef GALAXY_DEBUG_LOCK_ORDER

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace galaxy::common::lock_order {
namespace {

constexpr int kMaxFrames = 32;

/// The backtrace of the acquisition that first recorded an edge.
struct Stack {
  void* frames[kMaxFrames];
  int depth = 0;

  void Capture() { depth = backtrace(frames, kMaxFrames); }
  void Print() const { backtrace_symbols_fd(frames, depth, /*fd=*/2); }
};

/// before -> after -> stack of the acquisition of `after` while `before`
/// was held. First writer wins: the stored stack is the edge's first
/// occurrence, which is what the report should show.
using Graph = std::map<const void*, std::map<const void*, Stack>>;

/// The graph guard cannot be a common::Mutex — the hooks would recurse
/// into themselves. Both globals are leaked deliberately: hooks run from
/// static destructors of other TUs, after which a destroyed guard would
/// be UB (the static-destruction-order fiasco).
std::mutex& GraphMu() {
  // Intentional leak (see above); never deleted.
  // galaxy-lint: allow(naked-new)
  static std::mutex* mu = new std::mutex;
  return *mu;
}

Graph& GetGraph() {
  // Intentional leak (see above); never deleted.
  // galaxy-lint: allow(naked-new)
  static Graph* g = new Graph;
  return *g;
}

std::vector<const void*>& Held() {
  thread_local std::vector<const void*> held;
  return held;
}

/// Depth-first search for `target` following edges out of `from`.
/// Returns true and fills `path` (edge list from -> ... -> target).
bool FindPath(const Graph& g, const void* from, const void* target,
              std::vector<std::pair<const void*, const void*>>* path) {
  auto it = g.find(from);
  if (it == g.end()) return false;
  for (const auto& [next, stack] : it->second) {
    path->emplace_back(from, next);
    if (next == target || FindPath(g, next, target, path)) return true;
    path->pop_back();
  }
  return false;
}

[[noreturn]] void Die(const char* what, const void* a, const void* b,
                      const Stack* prior) {
  std::fprintf(stderr, "lock-order: %s: %p -> %p\n", what, a, b);
  std::fprintf(stderr, "lock-order: acquisition recording the new edge:\n");
  Stack here;
  here.Capture();
  here.Print();
  if (prior != nullptr) {
    std::fprintf(stderr,
                 "lock-order: first acquisition on the conflicting path:\n");
    prior->Print();
  }
  std::abort();
}

}  // namespace

void OnAcquire(const void* mu) {
  std::vector<const void*>& held = Held();
  for (const void* h : held) {
    if (h == mu) Die("recursive acquisition", mu, mu, nullptr);
  }
  if (!held.empty()) {
    std::lock_guard<std::mutex> guard(GraphMu());
    Graph& g = GetGraph();
    for (const void* h : held) {
      auto& out = g[h];
      if (out.find(mu) != out.end()) continue;  // edge known; keep 1st stack
      // A path mu -> ... -> h plus the new h -> mu closes a cycle: report
      // before inserting so the graph never holds a cyclic state.
      std::vector<std::pair<const void*, const void*>> path;
      if (FindPath(g, mu, h, &path)) {
        Die("acquisition-order cycle", h, mu, &g[path[0].first][path[0].second]);
      }
      out[mu].Capture();
    }
  }
  held.push_back(mu);
}

void OnRelease(const void* mu) {
  std::vector<const void*>& held = Held();
  // Locks are not always released LIFO (std::scoped_lock, manual Unlock):
  // drop the most recent matching entry wherever it sits.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void OnDestroy(const void* mu) {
  std::lock_guard<std::mutex> guard(GraphMu());
  Graph& g = GetGraph();
  g.erase(mu);
  for (auto& [from, out] : g) out.erase(mu);
}

}  // namespace galaxy::common::lock_order

#endif  // GALAXY_DEBUG_LOCK_ORDER
