#pragma once

// Shared helpers for the figure-reproduction benchmarks. Each bench binary
// regenerates one table/figure of the paper: every google-benchmark row is
// one data point of the figure (series encoded in the benchmark name), so
// the paper's plots can be rebuilt directly from the console output.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregate_skyline.h"
#include "datagen/groups.h"

namespace galaxy::bench {

/// Returns a memoized grouped dataset for the given generator config, so
/// that repeated benchmark iterations (and algorithms sharing a workload)
/// do not pay generation cost inside the timed region.
inline const core::GroupedDataset& CachedWorkload(
    const datagen::GroupedWorkloadConfig& config) {
  static auto* cache =
      // galaxy-lint: allow(naked-new) — intentionally leaked static cache
      new std::map<std::string, core::GroupedDataset>();
  std::string key = std::to_string(config.num_records) + "/" +
                    std::to_string(config.avg_records_per_group) + "/" +
                    std::to_string(config.dims) + "/" +
                    datagen::DistributionToString(config.distribution) + "/" +
                    std::to_string(config.spread) + "/" +
                    datagen::GroupSizeModelToString(config.size_model) + "/" +
                    std::to_string(config.zipf_theta) + "/" +
                    std::to_string(config.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, datagen::GenerateGrouped(config)).first;
  }
  return it->second;
}

/// Runs one aggregate-skyline configuration inside a benchmark loop and
/// reports skyline size and record-comparison counts as counters.
inline void RunAggregateSkyline(benchmark::State& state,
                                const core::GroupedDataset& dataset,
                                const core::AggregateSkylineOptions& options) {
  uint64_t record_cmps = 0;
  size_t skyline_size = 0;
  for (auto _ : state) {
    core::AggregateSkylineResult result =
        core::ComputeAggregateSkyline(dataset, options);
    benchmark::DoNotOptimize(result.skyline.data());
    record_cmps = result.stats.record_comparisons;
    skyline_size = result.skyline.size();
  }
  state.counters["skyline"] = static_cast<double>(skyline_size);
  state.counters["rec_cmps"] = static_cast<double>(record_cmps);
  state.counters["groups"] = static_cast<double>(dataset.num_groups());
}

/// The five paper algorithms in presentation order.
inline const std::vector<std::pair<std::string, core::Algorithm>>&
PaperAlgorithms() {
  static auto* algos =
      // galaxy-lint: allow(naked-new) — intentionally leaked static cache
      new std::vector<std::pair<std::string, core::Algorithm>>{
          {"NL", core::Algorithm::kNestedLoop},
          {"TR", core::Algorithm::kTransitive},
          {"SI", core::Algorithm::kSorted},
          {"IN", core::Algorithm::kIndexed},
          {"LO", core::Algorithm::kIndexedBbox},
      };
  return *algos;
}

/// The three record distributions used throughout Section 4.1.
inline const std::vector<std::pair<std::string, datagen::Distribution>>&
PaperDistributions() {
  static auto* dists =
      // galaxy-lint: allow(naked-new) — intentionally leaked static cache
      new std::vector<std::pair<std::string, datagen::Distribution>>{
          {"anti", datagen::Distribution::kAntiCorrelated},
          {"indep", datagen::Distribution::kIndependent},
          {"corr", datagen::Distribution::kCorrelated},
      };
  return *dists;
}

/// One row of a machine-readable benchmark report: a name plus flat
/// numeric metrics. Kept order-preserving so reports diff cleanly.
struct BenchJsonEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Renders entries as a stable, diff-friendly JSON document:
/// {"schema": <schema>, "quick": <bool>, "entries": [{"name": ..., ...}]}.
inline std::string FormatBenchJson(const std::string& schema, bool quick,
                                   const std::vector<BenchJsonEntry>& entries) {
  auto number = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  std::string out = "{\n";
  out += "  \"schema\": \"" + schema + "\",\n";
  out += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  out += "  \"entries\": [\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    out += "    {\"name\": \"" + entries[i].name + "\"";
    for (const auto& [key, value] : entries[i].metrics) {
      out += ", \"" + key + "\": " + number(value);
    }
    out += i + 1 < entries.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

/// Writes the report to `path`; false on I/O failure.
inline bool WriteBenchJson(const std::string& path, const std::string& schema,
                           bool quick,
                           const std::vector<BenchJsonEntry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = FormatBenchJson(schema, quick, entries);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace galaxy::bench

