// Table 2: p(S ≻ R) for the director pairs of Figure 5, computed on the
// reconstructed filmographies (see src/datagen/movies.h for the
// substitution note). The harness prints the six probabilities the paper
// tabulates and times the exact pair-probability computation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/gamma.h"
#include "datagen/movies.h"

namespace galaxy::bench {
namespace {

void BM_Table2(benchmark::State& state) {
  core::GroupedDataset ds = datagen::DirectorFilmographies();
  const core::Group& tarantino =
      ds.group(ds.FindByLabel(datagen::kTarantino).value());
  const core::Group& wiseau =
      ds.group(ds.FindByLabel(datagen::kWiseau).value());
  const core::Group& fleischer =
      ds.group(ds.FindByLabel(datagen::kFleischer).value());
  const core::Group& jackson =
      ds.group(ds.FindByLabel(datagen::kJackson).value());

  double p[6];
  for (auto _ : state) {
    p[0] = core::DominationProbability(tarantino, wiseau);
    p[1] = core::DominationProbability(tarantino, fleischer);
    p[2] = core::DominationProbability(tarantino, jackson);
    p[3] = core::DominationProbability(wiseau, tarantino);
    p[4] = core::DominationProbability(fleischer, tarantino);
    p[5] = core::DominationProbability(jackson, tarantino);
    benchmark::DoNotOptimize(p);
  }
  state.counters["T>W"] = p[0];
  state.counters["T>F"] = p[1];
  state.counters["T>J"] = p[2];
  state.counters["W>T"] = p[3];
  state.counters["F>T"] = p[4];
  state.counters["J>T"] = p[5];
}

}  // namespace
}  // namespace galaxy::bench

BENCHMARK(galaxy::bench::BM_Table2)
    ->Name("table2/domination-probabilities")
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  // Print the table itself (paper values in parentheses).
  auto ds = galaxy::datagen::DirectorFilmographies();
  auto p = [&](const char* s, const char* r) {
    return galaxy::core::DominationProbability(
        ds.group(ds.FindByLabel(s).value()),
        ds.group(ds.FindByLabel(r).value()));
  };
  using galaxy::datagen::kFleischer;
  using galaxy::datagen::kJackson;
  using galaxy::datagen::kTarantino;
  using galaxy::datagen::kWiseau;
  std::printf("Table 2: p(S > R)            measured   (paper)\n");
  std::printf("  Tarantino > Wiseau     :   %.4f     (1.00)\n",
              p(kTarantino, kWiseau));
  std::printf("  Tarantino > Fleischer  :   %.4f     (0.94)\n",
              p(kTarantino, kFleischer));
  std::printf("  Tarantino > Jackson    :   %.4f     (0.68)\n",
              p(kTarantino, kJackson));
  std::printf("  Wiseau    > Tarantino  :   %.4f     (0.00)\n",
              p(kWiseau, kTarantino));
  std::printf("  Fleischer > Tarantino  :   %.4f     (0.06)\n",
              p(kFleischer, kTarantino));
  std::printf("  Jackson   > Tarantino  :   %.4f     (0.26)\n",
              p(kJackson, kTarantino));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
