// Measures the cost of the execution control plane when it is NOT limiting
// anything — the acceptance bar is <= 2% overhead versus the legacy path
// when no deadline or budget is set. Three variants per algorithm:
//
//   legacy     ComputeAggregateSkyline (no Status, exec must be null)
//   null_exec  ComputeAggregateSkylineBounded with options.exec == nullptr
//   unlimited  ComputeAggregateSkylineBounded with an armed ExecutionContext
//              that has no deadline and no budgets (every Charge() batch
//              takes the fast path: one relaxed load + one branch)
//
// Compare the three series for one algorithm to read off the overhead.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "common/logging.h"
#include "core/aggregate_skyline.h"
#include "core/exec_context.h"
#include "datagen/groups.h"

namespace galaxy::bench {
namespace {

enum class Variant { kLegacy, kNullExec, kUnlimitedExec };

void RunVariant(benchmark::State& state, const core::GroupedDataset& dataset,
                core::AggregateSkylineOptions options, Variant variant) {
  // One context for all iterations: with no limits set it never trips, so
  // reuse is safe and keeps construction out of the timed region.
  core::ExecutionContext exec;
  uint64_t record_cmps = 0;
  size_t skyline_size = 0;
  for (auto _ : state) {
    if (variant == Variant::kLegacy) {
      core::AggregateSkylineResult result =
          core::ComputeAggregateSkyline(dataset, options);
      benchmark::DoNotOptimize(result.skyline.data());
      record_cmps = result.stats.record_comparisons;
      skyline_size = result.skyline.size();
    } else {
      options.exec = variant == Variant::kUnlimitedExec ? &exec : nullptr;
      auto result = core::ComputeAggregateSkylineBounded(dataset, options);
      GALAXY_CHECK(result.ok());
      benchmark::DoNotOptimize(result->skyline.data());
      record_cmps = result->stats.record_comparisons;
      skyline_size = result->skyline.size();
    }
  }
  state.counters["skyline"] = static_cast<double>(skyline_size);
  state.counters["rec_cmps"] = static_cast<double>(record_cmps);
}

void RegisterAll() {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 10000;
  config.avg_records_per_group = 100;
  config.dims = 5;
  config.distribution = datagen::Distribution::kAntiCorrelated;
  config.spread = 0.2;
  config.seed = 42;

  const std::vector<std::pair<std::string, Variant>> variants = {
      {"legacy", Variant::kLegacy},
      {"null_exec", Variant::kNullExec},
      {"unlimited", Variant::kUnlimitedExec},
  };
  for (const auto& [algo_name, algo] : PaperAlgorithms()) {
    for (const auto& [variant_name, variant] : variants) {
      std::string name =
          "overhead/" + algo_name + "/" + variant_name;
      core::AggregateSkylineOptions options;
      options.gamma = 0.6;
      options.algorithm = algo;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, options, variant](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedWorkload(config);
            RunVariant(state, dataset, options, variant);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
