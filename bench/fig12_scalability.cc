// Figure 12: scalability in the number of records (records uniformly
// distributed into classes of ~100) for the three distributions.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    for (size_t records : {2000, 5000, 10000, 20000, 50000}) {
      for (const auto& [algo_name, algo] : PaperAlgorithms()) {
        std::string name = "fig12/" + dist_name + "/n=" +
                           std::to_string(records) + "/" + algo_name;
        datagen::GroupedWorkloadConfig config;
        config.num_records = records;
        config.avg_records_per_group = 100;
        config.dims = 5;
        config.distribution = dist;
        config.spread = 0.2;
        config.seed = 42;
        core::Algorithm algorithm = algo;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [config, algorithm](benchmark::State& state) {
              const core::GroupedDataset& dataset = CachedWorkload(config);
              core::AggregateSkylineOptions options;
              options.gamma = 0.5;
              options.algorithm = algorithm;
              RunAggregateSkyline(state, dataset, options);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
