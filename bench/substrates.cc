// Substrate microbenchmarks (not a paper figure): record-skyline
// algorithms (BNL / SFS / D&C) across the three distributions, and R-tree
// construction / window-query throughput — the building blocks whose costs
// feed every aggregate-skyline number in the other benches.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "skyline/skyline.h"
#include "spatial/rtree.h"

namespace galaxy::bench {
namespace {

const std::vector<Point>& CachedPoints(datagen::Distribution dist,
                                       size_t dims, size_t count) {
  // galaxy-lint: allow(naked-new) — intentionally leaked static cache
  static auto* cache = new std::map<std::string, std::vector<Point>>();
  std::string key = std::string(datagen::DistributionToString(dist)) + "/" +
                    std::to_string(dims) + "/" + std::to_string(count);
  auto it = cache->find(key);
  if (it == cache->end()) {
    Rng rng(1234);
    it = cache->emplace(key, datagen::SamplePoints(dist, dims, count, rng))
             .first;
  }
  return it->second;
}

void RegisterRecordSkyline() {
  struct AlgoVariant {
    const char* name;
    skyline::Algorithm algorithm;
  };
  const AlgoVariant algos[] = {
      {"BNL", skyline::Algorithm::kBnl},
      {"SFS", skyline::Algorithm::kSfs},
      {"DC", skyline::Algorithm::kDivideConquer},
  };
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    for (const AlgoVariant& algo : algos) {
      std::string name = std::string("substrate-skyline/") + dist_name +
                         "/n=20000/d=4/" + algo.name;
      datagen::Distribution distribution = dist;
      skyline::Algorithm algorithm = algo.algorithm;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [distribution, algorithm](benchmark::State& state) {
            const std::vector<Point>& pts =
                CachedPoints(distribution, 4, 20000);
            skyline::PreferenceList prefs = skyline::AllMax(4);
            size_t size = 0;
            for (auto _ : state) {
              auto result = skyline::Compute(pts, prefs, algorithm);
              benchmark::DoNotOptimize(result.data());
              size = result.size();
            }
            state.counters["skyline"] = static_cast<double>(size);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const std::vector<Point>& pts =
      CachedPoints(datagen::Distribution::kIndependent, 5, n);
  for (auto _ : state) {
    spatial::RTree tree(5);
    tree.BulkLoad(pts);
    benchmark::DoNotOptimize(tree.size());
  }
}

void BM_RTreeInsert(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const std::vector<Point>& pts =
      CachedPoints(datagen::Distribution::kIndependent, 5, n);
  for (auto _ : state) {
    spatial::RTree tree(5);
    for (uint32_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
    benchmark::DoNotOptimize(tree.size());
  }
}

void BM_RTreeWindowQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  const std::vector<Point>& pts =
      CachedPoints(datagen::Distribution::kIndependent, 5, n);
  spatial::RTree tree(5);
  tree.BulkLoad(pts);
  Rng rng(7);
  std::vector<uint32_t> out;
  size_t matched = 0;
  for (auto _ : state) {
    Point lo(5), hi(5);
    for (size_t d = 0; d < 5; ++d) {
      double a = rng.NextDouble() * 0.7;
      lo[d] = a;
      hi[d] = a + 0.3;
    }
    out.clear();
    tree.WindowQuery(Box(lo, hi), &out);
    benchmark::DoNotOptimize(out.data());
    matched = out.size();
  }
  state.counters["last_matches"] = static_cast<double>(matched);
}

}  // namespace
}  // namespace galaxy::bench

BENCHMARK(galaxy::bench::BM_RTreeBulkLoad)
    ->Name("substrate-rtree/bulk-load")
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(galaxy::bench::BM_RTreeInsert)
    ->Name("substrate-rtree/insert")
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(galaxy::bench::BM_RTreeWindowQuery)
    ->Name("substrate-rtree/window-query")
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  galaxy::bench::RegisterRecordSkyline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
