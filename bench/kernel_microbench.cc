// Microbenchmark of the dominance-counting kernels (core/count_kernel.h):
// raw CountBlock throughput against the scalar per-pair loop across
// dimensionalities and distributions, ClassifyPair under each KernelPolicy,
// and the parallel operator end to end. Emits a machine-readable JSON
// report (default BENCH_kernel.json) whose speedup ratios — not absolute
// times — feed the CI regression gate (scripts/check_bench_regression.py);
// ratios compare two code paths on the same machine and stay stable across
// hardware.
//
// Usage: kernel_microbench [--quick] [--out=PATH]
//   --quick   smaller workloads and shorter timing windows (CI smoke mode)
//   --out     report path; "-" suppresses the file

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/count_kernel.h"
#include "core/gamma.h"
#include "core/group.h"
#include "core/parallel.h"
#include "skyline/dominance.h"

namespace galaxy::bench {
namespace {

uint64_t g_sink = 0;  // defeats dead-code elimination across timed calls

// Rows drawn from the paper's record distributions, MAX-oriented in [0,1].
std::vector<double> MakeRows(Rng& rng, size_t n, size_t dims, bool anti) {
  std::vector<double> rows(n * dims);
  for (size_t i = 0; i < n; ++i) {
    if (anti) {
      // Anti-correlated: points near the hyperplane sum(x) = d/2.
      double remaining = static_cast<double>(dims) / 2.0;
      for (size_t k = 0; k + 1 < dims; ++k) {
        double v = rng.Uniform(0.0, 1.0);
        rows[i * dims + k] = v;
        remaining -= v;
      }
      double last = remaining + rng.Uniform(-0.1, 0.1);
      rows[i * dims + dims - 1] = std::min(1.0, std::max(0.0, last));
    } else {
      for (size_t k = 0; k < dims; ++k) {
        rows[i * dims + k] = rng.NextDouble();
      }
    }
  }
  return rows;
}

// The pre-kernel hot loop: one span-based CompareDominance per pair.
uint64_t ScalarCountPairs(const double* rows1, size_t n1, const double* rows2,
                          size_t n2, size_t dims) {
  uint64_t n12 = 0, n21 = 0;
  for (size_t i = 0; i < n1; ++i) {
    std::span<const double> a{rows1 + i * dims, dims};
    for (size_t j = 0; j < n2; ++j) {
      skyline::DominanceResult cmp =
          skyline::CompareDominance(a, {rows2 + j * dims, dims});
      if (cmp == skyline::DominanceResult::kLeftDominates) {
        ++n12;
      } else if (cmp == skyline::DominanceResult::kRightDominates) {
        ++n21;
      }
    }
  }
  return n12 * 1000003u + n21;
}

// Mean seconds per call: warm up once, then repeat until the window fills.
template <typename F>
double TimeOp(F&& op, double min_seconds) {
  op();
  WallTimer timer;
  int reps = 0;
  do {
    op();
    ++reps;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / reps;
}

void PrintEntry(const BenchJsonEntry& entry) {
  std::printf("%-32s", entry.name.c_str());
  for (const auto& [key, value] : entry.metrics) {
    std::printf("  %s=%.4g", key.c_str(), value);
  }
  std::printf("\n");
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  const double window = quick ? 0.05 : 0.3;
  std::vector<BenchJsonEntry> entries;
  Rng rng(42);

  // ---- Raw block-counting throughput vs the scalar loop. -----------------
  const size_t block_n = quick ? 256 : 1024;
  const std::vector<size_t> dims_list =
      quick ? std::vector<size_t>{2, 4} : std::vector<size_t>{2, 3, 4, 6, 8};
  for (bool anti : {false, true}) {
    if (quick && anti) break;
    for (size_t dims : dims_list) {
      std::vector<double> rows1 = MakeRows(rng, block_n, dims, anti);
      std::vector<double> rows2 = MakeRows(rng, block_n, dims, anti);
      const double pairs = static_cast<double>(block_n) * block_n;
      double scalar_s = TimeOp(
          [&] {
            g_sink +=
                ScalarCountPairs(rows1.data(), block_n, rows2.data(),
                                 block_n, dims);
          },
          window);
      double kernel_s = TimeOp(
          [&] {
            core::kernel::KernelCounts c = core::kernel::CountBlock(
                rows1.data(), block_n, rows2.data(), block_n, dims);
            g_sink += c.n12 * 1000003u + c.n21;
          },
          window);
      BenchJsonEntry e;
      e.name = "count_block_d" + std::to_string(dims) +
               (anti ? "_anti" : "_indep");
      e.metrics.emplace_back("pairs_per_sec", pairs / kernel_s);
      e.metrics.emplace_back("scalar_pairs_per_sec", pairs / scalar_s);
      e.metrics.emplace_back("speedup", scalar_s / kernel_s);
      PrintEntry(e);
      entries.push_back(std::move(e));
    }
  }

  // ---- 2D sweep vs the quadratic kernels. --------------------------------
  {
    const size_t n = quick ? 1024 : 4096;
    std::vector<double> rows1 = MakeRows(rng, n, 2, false);
    std::vector<double> rows2 = MakeRows(rng, n, 2, false);
    const double pairs = static_cast<double>(n) * n;
    core::kernel::Sweep2DScratch scratch;
    double tiled_s = TimeOp(
        [&] {
          core::kernel::KernelCounts c = core::kernel::CountBlock(
              rows1.data(), n, rows2.data(), n, 2);
          g_sink += c.n12 + c.n21;
        },
        window);
    double sweep_s = TimeOp(
        [&] {
          core::kernel::KernelCounts c = core::kernel::CountPairsSweep2D(
              rows1.data(), n, rows2.data(), n, &scratch);
          g_sink += c.n12 + c.n21;
        },
        window);
    BenchJsonEntry e;
    e.name = "sweep2d_n" + std::to_string(n);
    e.metrics.emplace_back("pairs_per_sec", pairs / sweep_s);
    e.metrics.emplace_back("tiled_pairs_per_sec", pairs / tiled_s);
    e.metrics.emplace_back("speedup_vs_tiled", tiled_s / sweep_s);
    PrintEntry(e);
    entries.push_back(std::move(e));
  }

  // ---- ClassifyPair under each policy (stop rule on, realistic path). ----
  {
    const size_t k = quick ? 1000 : 4000;
    const size_t dims = 4;
    core::Group g1(0, "a", MakeRows(rng, k, dims, false), dims);
    core::Group g2(1, "b", MakeRows(rng, k, dims, false), dims);
    core::GammaThresholds thresholds =
        core::GammaThresholds::FromGamma(0.8);
    double scalar_s = 0.0;
    for (core::KernelPolicy policy :
         {core::KernelPolicy::kScalar, core::KernelPolicy::kTiled,
          core::KernelPolicy::kSorted, core::KernelPolicy::kAuto}) {
      core::PairCompareOptions options;
      options.kernel = policy;
      uint64_t comparisons = 0;
      double s = TimeOp(
          [&] {
            core::PairCompareStats stats;
            core::PairOutcome outcome = core::ClassifyPair(
                g1, g2, thresholds, options, &stats);
            g_sink += static_cast<uint64_t>(outcome);
            comparisons = stats.record_comparisons;
          },
          window);
      if (policy == core::KernelPolicy::kScalar) scalar_s = s;
      BenchJsonEntry e;
      e.name = std::string("classify_pair_d4_") +
               core::KernelPolicyToString(policy);
      e.metrics.emplace_back("seconds_per_call", s);
      e.metrics.emplace_back("record_comparisons",
                             static_cast<double>(comparisons));
      e.metrics.emplace_back("speedup_vs_scalar", scalar_s / s);
      PrintEntry(e);
      entries.push_back(std::move(e));
    }
  }

  // ---- Parallel operator end to end (Zipf-skewed group sizes). -----------
  {
    datagen::GroupedWorkloadConfig config;
    config.num_records = quick ? 6000 : 40000;
    config.avg_records_per_group = 100;
    config.dims = 4;
    config.distribution = datagen::Distribution::kIndependent;
    config.size_model = datagen::GroupSizeModel::kZipf;
    config.seed = 7;
    const core::GroupedDataset& dataset = CachedWorkload(config);

    core::ParallelOptions single;
    single.num_threads = 1;
    core::ParallelOptions full;  // hardware concurrency

    // Steady-state warm-up: the first full-parallel call pays the global
    // pool's one-time thread spin-up; TimeOp's built-in single warm-up
    // call is not enough to also fault in the workload's caches on every
    // worker, so run both configurations once before either is timed —
    // the bench reports steady-state speedup, not pool start-up cost.
    g_sink += core::ComputeAggregateSkylineParallel(dataset, full)
                  .skyline.size();
    g_sink += core::ComputeAggregateSkylineParallel(dataset, single)
                  .skyline.size();

    // A single end-to-end run is tens of milliseconds, so the quick window
    // would time only one or two calls and the speedup ratio would be
    // dominated by scheduling noise; give this entry a longer window.
    const double parallel_window = std::max(window, 0.25);
    double single_s = TimeOp(
        [&] {
          auto result = core::ComputeAggregateSkylineParallel(dataset, single);
          g_sink += result.skyline.size();
        },
        parallel_window);

    uint64_t stolen = 0;
    uint64_t split = 0;
    double full_s = TimeOp(
        [&] {
          auto result = core::ComputeAggregateSkylineParallel(dataset, full);
          g_sink += result.skyline.size();
          stolen = result.stats.chunks_stolen;
          split = result.stats.pairs_split;
        },
        parallel_window);
    BenchJsonEntry e;
    e.name = "parallel_zipf_d4";
    e.metrics.emplace_back("seconds_single", single_s);
    e.metrics.emplace_back("seconds_full", full_s);
    e.metrics.emplace_back("parallel_speedup", single_s / full_s);
    e.metrics.emplace_back("chunks_stolen", static_cast<double>(stolen));
    e.metrics.emplace_back("pairs_split", static_cast<double>(split));
    PrintEntry(e);
    entries.push_back(std::move(e));
  }

  if (out_path != "-") {
    if (!WriteBenchJson(out_path, "galaxy-kernel-bench-v1", quick, entries)) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  // The sink must survive to keep every timed call observable.
  std::printf("checksum %llu\n", static_cast<unsigned long long>(g_sink));
  return 0;
}

}  // namespace galaxy::bench

int main(int argc, char** argv) { return galaxy::bench::Main(argc, argv); }
