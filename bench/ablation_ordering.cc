// Ablation: group access orderings for the sorted algorithm — the paper's
// corner-distance order (Algorithm 4) versus the global
// small-groups-first heuristic (Section 3.4), on uniform and Zipfian group
// sizes. The Zipf workload is where small-first should pay: the few huge
// groups are pruned before their quadratic comparisons are paid.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  struct OrderingVariant {
    const char* name;
    core::GroupOrdering ordering;
  };
  const OrderingVariant orderings[] = {
      {"corner-distance", core::GroupOrdering::kCornerDistance},
      {"smallest-first", core::GroupOrdering::kSmallestFirst},
      {"smallest-then-corner",
       core::GroupOrdering::kSmallestFirstThenCorner},
  };
  struct SizeVariant {
    const char* name;
    datagen::GroupSizeModel model;
  };
  const SizeVariant sizes[] = {
      {"uniform", datagen::GroupSizeModel::kUniform},
      {"zipf", datagen::GroupSizeModel::kZipf},
  };
  for (const SizeVariant& size : sizes) {
    for (const OrderingVariant& ordering : orderings) {
      std::string name = std::string("ablation-ordering/") + size.name + "/" +
                         ordering.name;
      datagen::GroupedWorkloadConfig config;
      config.num_records = 10000;
      config.avg_records_per_group = 100;
      config.dims = 5;
      config.distribution = datagen::Distribution::kAntiCorrelated;
      config.spread = 0.2;
      config.size_model = size.model;
      config.zipf_theta = 1.0;
      config.seed = 42;
      core::GroupOrdering group_ordering = ordering.ordering;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, group_ordering](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedWorkload(config);
            core::AggregateSkylineOptions options;
            options.gamma = 0.5;
            options.algorithm = core::Algorithm::kSorted;
            options.ordering = group_ordering;
            RunAggregateSkyline(state, dataset, options);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
