// Ablation: the weak-transitivity gap. The paper's TR/SI/IN/LO skip
// strongly-dominated groups; weak transitivity (Proposition 5) justifies
// this only for γ̄-γ̄ chains, so the pruned algorithms may return a
// superset of the exact skyline (DESIGN.md). This bench measures both the
// cost of the exact "safe mode" (prune_strongly_dominated = false) and the
// observed surplus, per distribution.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  struct Variant {
    const char* name;
    bool pruned;
    bool proven_bar;
  };
  const Variant variants[] = {
      {"/pruned", true, false},
      {"/pruned-proven-bar", true, true},
      {"/safe-mode", false, false},
  };
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    for (const Variant& variant : variants) {
      std::string name =
          std::string("ablation-exactness/") + dist_name + variant.name;
      datagen::GroupedWorkloadConfig config;
      config.num_records = 10000;
      config.avg_records_per_group = 100;
      config.dims = 5;
      config.distribution = dist;
      config.spread = 0.2;
      config.seed = 42;
      bool use_pruning = variant.pruned;
      bool proven_bar = variant.proven_bar;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, use_pruning, proven_bar](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedWorkload(config);
            core::AggregateSkylineOptions options;
            options.gamma = 0.5;
            options.algorithm = core::Algorithm::kTransitive;
            options.prune_strongly_dominated = use_pruning;
            options.use_proven_gamma_bar = proven_bar;
            RunAggregateSkyline(state, dataset, options);

            // Report the surplus of the pruned result over the exact one.
            if (use_pruning) {
              core::AggregateSkylineOptions exact = options;
              exact.prune_strongly_dominated = false;
              size_t exact_size =
                  core::ComputeAggregateSkyline(dataset, exact)
                      .skyline.size();
              size_t pruned_size =
                  core::ComputeAggregateSkyline(dataset, options)
                      .skyline.size();
              state.counters["surplus"] =
                  static_cast<double>(pruned_size - exact_size);
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
