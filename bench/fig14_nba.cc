// Figure 14: efficiency on the (synthetic substitute of the) real NBA
// dataset, grouped by different attributes with different numbers of
// skyline attributes. Mirrors the paper's six panels: fine-grained
// groupings with many small groups (player, player+year) behave like a
// record skyline where group optimizations matter less; coarse groupings
// (year, team) produce few large groups where they shine.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "nba/nba_gen.h"

namespace galaxy::bench {
namespace {

const Table& NbaTable() {
  static const Table* table = [] {
    nba::NbaConfig config;
    // galaxy-lint: allow(naked-new) — intentionally leaked static cache
    return new Table(nba::ToTable(nba::GenerateLeagueHistory(config)));
  }();
  return *table;
}

const core::GroupedDataset& CachedNba(
    const std::vector<std::string>& group_by, size_t num_attrs) {
  // galaxy-lint: allow(naked-new) — intentionally leaked static cache
  static auto* cache = new std::map<std::string, core::GroupedDataset>();
  std::string key;
  for (const auto& g : group_by) key += g + ",";
  key += "#" + std::to_string(num_attrs);
  auto it = cache->find(key);
  if (it == cache->end()) {
    std::vector<std::string> attrs(nba::StatColumns().begin(),
                                   nba::StatColumns().begin() +
                                       static_cast<long>(num_attrs));
    auto ds = core::GroupedDataset::FromTable(NbaTable(), group_by, attrs);
    it = cache->emplace(key, std::move(ds).value()).first;
  }
  return it->second;
}

struct Panel {
  std::string name;
  std::vector<std::string> group_by;
  size_t num_attrs;
};

void RegisterAll() {
  // Six panels: grouping attribute(s) x number of skyline attributes,
  // echoing the paper's "grouped by different attributes / number of
  // skyline attributes used in each query".
  const std::vector<Panel> panels = {
      {"by-year/attrs=8", {"year"}, 8},
      {"by-team/attrs=4", {"team"}, 4},
      {"by-pos/attrs=8", {"pos"}, 8},
      {"by-team-year/attrs=4", {"team", "year"}, 4},
      {"by-player/attrs=8", {"player"}, 8},
      {"by-player/attrs=2", {"player"}, 2},
  };
  for (const Panel& panel : panels) {
    for (const auto& [algo_name, algo] : PaperAlgorithms()) {
      std::string name = "fig14/" + panel.name + "/" + algo_name;
      std::vector<std::string> group_by = panel.group_by;
      size_t num_attrs = panel.num_attrs;
      core::Algorithm algorithm = algo;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [group_by, num_attrs, algorithm](benchmark::State& state) {
            const core::GroupedDataset& dataset =
                CachedNba(group_by, num_attrs);
            core::AggregateSkylineOptions options;
            options.gamma = 0.5;
            options.algorithm = algorithm;
            RunAggregateSkyline(state, dataset, options);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
