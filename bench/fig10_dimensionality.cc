// Figure 10: runtime vs dimensionality (d = 2..7) for anti-correlated,
// independent and correlated distributions; records uniformly distributed
// into classes. Defaults per Section 4: 10 000 records, 100 records/class,
// spread 20%, gamma = 0.5.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    for (size_t dims : {2, 3, 4, 5, 6, 7}) {
      for (const auto& [algo_name, algo] : PaperAlgorithms()) {
        std::string name = "fig10/" + dist_name + "/d=" +
                           std::to_string(dims) + "/" + algo_name;
        datagen::GroupedWorkloadConfig config;
        config.num_records = 10000;
        config.avg_records_per_group = 100;
        config.dims = dims;
        config.distribution = dist;
        config.spread = 0.2;
        config.seed = 42;
        core::Algorithm algorithm = algo;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [config, algorithm](benchmark::State& state) {
              const core::GroupedDataset& dataset = CachedWorkload(config);
              core::AggregateSkylineOptions options;
              options.gamma = 0.5;
              options.algorithm = algorithm;
              RunAggregateSkyline(state, dataset, options);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
