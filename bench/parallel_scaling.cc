// Parallel-scaling benchmark of the aggregate-skyline operator
// (core/parallel.h): wall time and speedup of 1..8 threads over three
// workload shapes — uniform group sizes, Zipf-skewed sizes (the shape
// whose single giant pair serialized the pre-cost-model scheduler,
// ISSUE 6), and a few-giant-groups shape where three groups hold most of
// the records. Emits a machine-readable JSON trajectory (default
// BENCH_parallel.json) consumed by scripts/check_bench_regression.py: the
// per-thread speedup ratios are compared against the checked-in baseline,
// and the Zipf d=4 8-thread entry carries a hard >=3x floor that applies
// only on machines actually exposing >= 8 hardware threads (single-core
// CI runners legitimately report ~1.0 and are exempt, mirroring the
// kernel report's parallel_speedup exemption).
//
// Usage: parallel_scaling [--quick] [--out=PATH]
//   --quick   smaller workloads and shorter timing windows (CI smoke mode)
//   --out     report path; "-" suppresses the file

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/group.h"
#include "core/parallel.h"
#include "datagen/groups.h"

namespace galaxy::bench {
namespace {

uint64_t g_sink = 0;  // defeats dead-code elimination across timed calls

// Mean seconds per call: warm up once, then repeat until the window fills.
template <typename F>
double TimeOp(F&& op, double min_seconds) {
  op();
  WallTimer timer;
  int reps = 0;
  do {
    op();
    ++reps;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / reps;
}

// Few-giant-groups shape: `giants` groups carry `giant_records` records
// each while `minnows` groups carry `minnow_records` — the worst case for
// pair-count-based chunking, where a handful of giant-giant pairs hold
// nearly all the classification cost.
core::GroupedDataset FewGiantWorkload(size_t giants, size_t giant_records,
                                      size_t minnows, size_t minnow_records,
                                      size_t dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Point>> groups;
  groups.reserve(giants + minnows);
  for (size_t g = 0; g < giants + minnows; ++g) {
    const size_t records = g < giants ? giant_records : minnow_records;
    Point center(dims);
    for (double& c : center) c = rng.NextDouble();
    std::vector<Point> group;
    group.reserve(records);
    for (size_t r = 0; r < records; ++r) {
      Point p(dims);
      for (size_t k = 0; k < dims; ++k) {
        p[k] = std::clamp(center[k] + rng.Uniform(-0.1, 0.1), 0.0, 1.0);
      }
      group.push_back(std::move(p));
    }
    groups.push_back(std::move(group));
  }
  return core::GroupedDataset::FromPoints(groups);
}

void PrintEntry(const BenchJsonEntry& entry) {
  std::printf("%-24s", entry.name.c_str());
  for (const auto& [key, value] : entry.metrics) {
    std::printf("  %s=%.4g", key.c_str(), value);
  }
  std::printf("\n");
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  // One end-to-end run is tens of milliseconds, so even quick mode keeps a
  // window wide enough for several repetitions per point — the speedup
  // ratios feed a CI gate and must not be scheduling-noise artifacts.
  const double window = quick ? 0.2 : 0.5;
  const double hardware =
      static_cast<double>(std::max(1u, std::thread::hardware_concurrency()));
  const std::vector<size_t> thread_axis = {1, 2, 4, 8};
  std::vector<BenchJsonEntry> entries;

  struct Shape {
    std::string name;
    const core::GroupedDataset* dataset;
  };
  std::vector<Shape> shapes;

  datagen::GroupedWorkloadConfig uniform;
  uniform.num_records = quick ? 6000 : 40000;
  uniform.avg_records_per_group = 100;
  uniform.dims = 4;
  uniform.distribution = datagen::Distribution::kIndependent;
  uniform.size_model = datagen::GroupSizeModel::kUniform;
  uniform.seed = 7;
  shapes.push_back({"uniform_d4", &CachedWorkload(uniform)});

  // The same workload as kernel_microbench's parallel_zipf_d4 entry, so
  // the two reports describe the same shape.
  datagen::GroupedWorkloadConfig zipf = uniform;
  zipf.size_model = datagen::GroupSizeModel::kZipf;
  shapes.push_back({"zipf_d4", &CachedWorkload(zipf)});

  static const core::GroupedDataset few_giant =
      quick ? FewGiantWorkload(3, 1200, 40, 25, 4, 11)
            : FewGiantWorkload(3, 8000, 100, 40, 4, 11);
  shapes.push_back({"few_giant_d4", &few_giant});

  for (const Shape& shape : shapes) {
    // Pool spin-up and cache warm-up before any timed run: the report is
    // about steady-state scaling, not one-time thread creation.
    {
      core::ParallelOptions warm;
      warm.num_threads = thread_axis.back();
      g_sink += core::ComputeAggregateSkylineParallel(*shape.dataset, warm)
                    .skyline.size();
    }
    double single_s = 0.0;
    for (size_t threads : thread_axis) {
      core::ParallelOptions options;
      options.num_threads = threads;
      uint64_t stolen = 0;
      uint64_t split = 0;
      double s = TimeOp(
          [&] {
            auto result =
                core::ComputeAggregateSkylineParallel(*shape.dataset, options);
            g_sink += result.skyline.size();
            stolen = result.stats.chunks_stolen;
            split = result.stats.pairs_split;
          },
          window);
      if (threads == 1) single_s = s;
      BenchJsonEntry e;
      e.name = "scaling_" + shape.name + "_t" + std::to_string(threads);
      e.metrics.emplace_back("threads", static_cast<double>(threads));
      e.metrics.emplace_back("seconds", s);
      e.metrics.emplace_back("speedup", single_s / s);
      e.metrics.emplace_back("chunks_stolen", static_cast<double>(stolen));
      e.metrics.emplace_back("pairs_split", static_cast<double>(split));
      e.metrics.emplace_back("hardware_threads", hardware);
      PrintEntry(e);
      entries.push_back(std::move(e));
    }
  }

  if (out_path != "-") {
    if (!WriteBenchJson(out_path, "galaxy-parallel-bench-v1", quick,
                        entries)) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  // The sink must survive to keep every timed call observable.
  std::printf("checksum %llu\n", static_cast<unsigned long long>(g_sink));
  return 0;
}

}  // namespace galaxy::bench

int main(int argc, char** argv) { return galaxy::bench::Main(argc, argv); }
