// Ablation: the adaptive planner (Algorithm::kAuto) against the fixed
// paper algorithms across overlap regimes. Figure 11's crossover is the
// motivation: the indexed algorithms win at low overlap, the sorted nested
// loop at high overlap; kAuto should track the winner on both sides.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/adaptive.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  struct AlgoVariant {
    const char* name;
    core::Algorithm algorithm;
  };
  const AlgoVariant algos[] = {
      {"SI", core::Algorithm::kSorted},
      {"IN", core::Algorithm::kIndexed},
      {"LO", core::Algorithm::kIndexedBbox},
      {"AUTO", core::Algorithm::kAuto},
  };
  for (int spread_pct : {10, 50, 90}) {
    for (const AlgoVariant& algo : algos) {
      std::string name = "ablation-adaptive/overlap=" +
                         std::to_string(spread_pct) + "%/" + algo.name;
      datagen::GroupedWorkloadConfig config;
      config.num_records = 10000;
      config.avg_records_per_group = 100;
      config.dims = 5;
      config.distribution = datagen::Distribution::kAntiCorrelated;
      config.spread = spread_pct / 100.0;
      config.seed = 42;
      core::Algorithm algorithm = algo.algorithm;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, algorithm](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedWorkload(config);
            core::AggregateSkylineOptions options;
            options.gamma = 0.5;
            options.algorithm = algorithm;
            RunAggregateSkyline(state, dataset, options);
            if (algorithm == core::Algorithm::kAuto) {
              core::AggregateSkylineResult once =
                  core::ComputeAggregateSkyline(dataset, options);
              state.SetLabel(std::string("chose ") +
                             core::AlgorithmToString(once.algorithm_used));
            }
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
