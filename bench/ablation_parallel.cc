// Ablation: thread scaling of the parallel exact operator versus the
// single-threaded nested loop, on the default workload per distribution.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/parallel.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    datagen::GroupedWorkloadConfig config;
    config.num_records = 10000;
    config.avg_records_per_group = 100;
    config.dims = 5;
    config.distribution = dist;
    config.spread = 0.2;
    config.seed = 42;

    benchmark::RegisterBenchmark(
        (std::string("ablation-parallel/") + dist_name + "/NL-1thread")
            .c_str(),
        [config](benchmark::State& state) {
          const core::GroupedDataset& dataset = CachedWorkload(config);
          core::AggregateSkylineOptions options;
          options.gamma = 0.5;
          options.algorithm = core::Algorithm::kNestedLoop;
          RunAggregateSkyline(state, dataset, options);
        })
        ->Unit(benchmark::kMillisecond);

    for (size_t threads : {1, 2, 4, 8}) {
      std::string name = std::string("ablation-parallel/") + dist_name +
                         "/parallel-" + std::to_string(threads) + "threads";
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, threads](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedWorkload(config);
            core::ParallelOptions options;
            options.gamma = 0.5;
            options.num_threads = threads;
            size_t skyline = 0;
            for (auto _ : state) {
              core::AggregateSkylineResult result =
                  core::ComputeAggregateSkylineParallel(dataset, options);
              benchmark::DoNotOptimize(result.skyline.data());
              skyline = result.skyline.size();
            }
            state.counters["skyline"] = static_cast<double>(skyline);
          })
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
