// Figure 11: runtime vs group overlapping (class spread 10%..90% of the
// data space) for the three distributions. Large overlap makes the pure
// index-based approach (IN) lose its edge — the window query returns almost
// everything — while LO's bounding-box internal pruning and the stop rule
// keep the others competitive.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    for (int spread_pct : {10, 30, 50, 70, 90}) {
      for (const auto& [algo_name, algo] : PaperAlgorithms()) {
        std::string name = "fig11/" + dist_name + "/overlap=" +
                           std::to_string(spread_pct) + "%/" + algo_name;
        datagen::GroupedWorkloadConfig config;
        config.num_records = 10000;
        config.avg_records_per_group = 100;
        config.dims = 5;
        config.distribution = dist;
        config.spread = spread_pct / 100.0;
        config.seed = 42;
        core::Algorithm algorithm = algo;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [config, algorithm](benchmark::State& state) {
              const core::GroupedDataset& dataset = CachedWorkload(config);
              core::AggregateSkylineOptions options;
              options.gamma = 0.5;
              options.algorithm = algorithm;
              RunAggregateSkyline(state, dataset, options);
            })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
