// Figure 8 + SQL-engine scalability: end-to-end latency of the SQL layer.
//
// Two sections share one report (schema galaxy-sql-bench-v1, default
// BENCH_sql.json, gated by scripts/check_bench_regression.py):
//
//  * sql_* shapes — scan, filtered scan, GROUP BY aggregation and grouped
//    skyline queries over one generated table, each timed twice in the
//    same process: through the batch columnar pipeline (default) and
//    through the tuple-at-a-time reference (ExecOptions::force_scalar).
//    The speedup_vs_scalar ratios are cross-machine-stable and carry hard
//    >=2x floors on the scan- and GROUP-BY-dominated shapes — the ISSUE 8
//    acceptance criterion.
//
//  * fig08_* — the paper's Figure 8 reproduction: the quadratic
//    self-join SQL of Algorithm 1 versus the native nested-loop operator
//    on the same data (the paper used sqlite; the blow-up is a property
//    of the query shape, not the engine). Reported as informational
//    seconds — the gap is the paper's two orders of magnitude.
//
// Usage: fig08_sql_scalability [--quick] [--out=PATH]
//   --quick   smaller workloads and shorter timing windows (CI smoke mode)
//   --out     report path; "-" suppresses the file

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "datagen/groups.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/skyline_query.h"

namespace galaxy::bench {
namespace {

uint64_t g_sink = 0;  // defeats dead-code elimination across timed calls

// Mean seconds per call: warm up once, then repeat until the window fills.
template <typename F>
double TimeOp(F&& op, double min_seconds) {
  op();
  WallTimer timer;
  int reps = 0;
  do {
    op();
    ++reps;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / reps;
}

void PrintEntry(const BenchJsonEntry& entry) {
  std::printf("%-24s", entry.name.c_str());
  for (const auto& [key, value] : entry.metrics) {
    std::printf("  %s=%.4g", key.c_str(), value);
  }
  std::printf("\n");
}

// Times one query in the given mode, accumulating result rows into the
// sink; exits on query failure (a bench over a broken query is a bug).
double TimeQuery(const sql::Database& db, const std::string& name,
                 const std::string& query, bool force_scalar, double window) {
  sql::ExecOptions options;
  options.force_scalar = force_scalar;
  return TimeOp(
      [&] {
        auto result = db.Query(query, options);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: %s\n", name.c_str(),
                       result.status().ToString().c_str());
          std::exit(1);
        }
        g_sink += result->num_rows();
      },
      window);
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_sql.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }
  const double window = quick ? 0.1 : 0.5;
  std::vector<BenchJsonEntry> entries;

  // ---- Section 1: batch vs scalar pipeline on one table -----------------
  datagen::GroupedWorkloadConfig config;
  config.num_records = quick ? 8000 : 50000;
  config.avg_records_per_group = 100;
  config.dims = 4;
  config.distribution = datagen::Distribution::kIndependent;
  config.spread = 0.2;
  config.seed = 42;
  sql::Database db;
  db.Register("data", datagen::GroupedDatasetToTable(CachedWorkload(config)));

  struct Shape {
    const char* name;
    std::string query;
    // Gated shapes report the batch/scalar ratio as speedup_vs_scalar (a
    // ratio key the regression checker compares with 25% tolerance).
    // Ungated shapes report it as handoff_ratio, informational only.
    bool gated;
  };
  const Shape shapes[] = {
      {"sql_scan_project", "SELECT a0, a1 FROM data", true},
      {"sql_scan_filter",
       "SELECT a0, a1 FROM data WHERE a0 > 0.5 AND a1 > 0.25", true},
      {"sql_scan_star_filter", "SELECT * FROM data WHERE a0 > 0.9", true},
      {"sql_group_agg",
       "SELECT class, COUNT(*), AVG(a0), MAX(a1), SUM(num) FROM data "
       "GROUP BY class",
       true},
      // Grouped skyline: end-to-end time is dominated by the dominance
      // kernels, so the ratio here measures the substrate handoff, not
      // the kernels — expected near 1x and too noise-bound to gate.
      {"sql_group_skyline",
       "SELECT class FROM data GROUP BY class "
       "SKYLINE OF a0 MAX, a1 MAX, a2 MAX, a3 MAX GAMMA 0.5",
       false},
  };
  for (const Shape& shape : shapes) {
    const double vec = TimeQuery(db, shape.name, shape.query,
                                 /*force_scalar=*/false, window);
    const double scalar = TimeQuery(db, shape.name, shape.query,
                                    /*force_scalar=*/true, window);
    BenchJsonEntry e;
    e.name = shape.name;
    e.metrics.emplace_back("seconds", vec);
    e.metrics.emplace_back("scalar_seconds", scalar);
    e.metrics.emplace_back(shape.gated ? "speedup_vs_scalar"
                                       : "handoff_ratio",
                           scalar / vec);
    PrintEntry(e);
    entries.push_back(std::move(e));
  }

  // ---- Section 2: Figure 8 — Algorithm 1 SQL vs native operator ---------
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{250, 500, 1000}
            : std::vector<size_t>{250, 500, 1000, 2000, 4000};
  for (size_t records : sizes) {
    datagen::GroupedWorkloadConfig f8;
    f8.num_records = records;
    f8.avg_records_per_group = 25;
    f8.dims = 2;
    f8.distribution = datagen::Distribution::kIndependent;
    f8.spread = 0.2;
    f8.seed = 42;
    const core::GroupedDataset& dataset = CachedWorkload(f8);
    sql::Database db8;
    db8.Register("data", datagen::GroupedDatasetToTable(dataset));
    const std::string alg1 = sql::BuildAggregateSkylineSql(
        "data", "class", "num", {"a0", "a1"}, 0.5);
    // The self-join touches multiple FROM tables, so it runs on the scalar
    // pipeline in both modes; one measurement suffices.
    const double sql_s =
        TimeQuery(db8, "fig08_sql", alg1, /*force_scalar=*/false, window);

    core::AggregateSkylineOptions options;
    options.gamma = 0.5;
    options.algorithm = core::Algorithm::kNestedLoop;
    const double native_s = TimeOp(
        [&] {
          g_sink += core::ComputeAggregateSkyline(dataset, options)
                        .skyline.size();
        },
        window);

    BenchJsonEntry e;
    e.name = "fig08_n" + std::to_string(records);
    e.metrics.emplace_back("sql_seconds", sql_s);
    e.metrics.emplace_back("native_seconds", native_s);
    e.metrics.emplace_back("sql_over_native", sql_s / native_s);
    PrintEntry(e);
    entries.push_back(std::move(e));
  }

  if (out_path != "-") {
    if (!WriteBenchJson(out_path, "galaxy-sql-bench-v1", quick, entries)) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  // The sink must survive to keep every timed call observable.
  std::printf("checksum %llu\n", static_cast<unsigned long long>(g_sink));
  return 0;
}

}  // namespace galaxy::bench

int main(int argc, char** argv) { return galaxy::bench::Main(argc, argv); }
