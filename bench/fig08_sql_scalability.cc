// Figure 8: scalability of the direct SQL implementation (Algorithm 1)
// executed by the from-scratch SQL engine (the paper used sqlite; the
// quadratic self-join blow-up is a property of the query shape, not the
// engine). For contrast each size also reports the native nested-loop
// operator on the same data — the gap is the paper's two orders of
// magnitude.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sql/catalog.h"
#include "sql/skyline_query.h"

namespace galaxy::bench {
namespace {

datagen::GroupedWorkloadConfig ConfigFor(size_t records) {
  datagen::GroupedWorkloadConfig config;
  config.num_records = records;
  config.avg_records_per_group = 25;
  config.dims = 2;
  config.distribution = datagen::Distribution::kIndependent;
  config.spread = 0.2;
  config.seed = 42;
  return config;
}

void BM_Sql(benchmark::State& state) {
  size_t records = static_cast<size_t>(state.range(0));
  const core::GroupedDataset& dataset = CachedWorkload(ConfigFor(records));
  Table table = datagen::GroupedDatasetToTable(dataset);
  sql::Database db;
  db.Register("data", table);
  std::string query =
      sql::BuildAggregateSkylineSql("data", "class", "num", {"a0", "a1"}, 0.5);
  size_t rows = 0;
  for (auto _ : state) {
    auto result = db.Query(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["skyline"] = static_cast<double>(rows);
}

void BM_Native(benchmark::State& state) {
  size_t records = static_cast<size_t>(state.range(0));
  const core::GroupedDataset& dataset = CachedWorkload(ConfigFor(records));
  core::AggregateSkylineOptions options;
  options.gamma = 0.5;
  options.algorithm = core::Algorithm::kNestedLoop;
  RunAggregateSkyline(state, dataset, options);
}

}  // namespace
}  // namespace galaxy::bench

BENCHMARK(galaxy::bench::BM_Sql)
    ->Name("fig08/sql-algorithm1")
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(galaxy::bench::BM_Native)
    ->Name("fig08/native-NL")
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
