// Sustained-update throughput of the durability subsystem: POST /update
// driven through the in-process Server::Handle seam (no sockets, so the
// numbers isolate WAL + catalog + view cost from network noise) against a
// real on-disk data directory, one run per fsync policy plus a
// no-durability baseline. Also times a single snapshot rotation of the
// grown table. Emits BENCH_durability.json (schema
// galaxy-durability-bench-v1); the absolute updates/sec depend on the
// machine's fsync latency, so the report is recorded, not gated.
//
// Usage: durability_bench [--quick] [--out=PATH]
//   --quick   fewer updates per policy (CI smoke mode)
//   --out     report path; "-" suppresses the file

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "relation/csv.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "server/http.h"
#include "server/server.h"
#include "sql/catalog.h"
#include "storage/durability.h"
#include "storage/env.h"

namespace galaxy::bench {
namespace {

Schema BenchSchema() {
  return Schema({ColumnDef{"g", ValueType::kString},
                 ColumnDef{"x", ValueType::kInt64},
                 ColumnDef{"y", ValueType::kDouble}});
}

Table SeedTable() {
  TableBuilder builder(BenchSchema());
  auto parsed = ParseCsvRowForSchema(BenchSchema(), "seed,0,0.5");
  if (parsed.ok()) builder.AddRow(*std::move(parsed));
  return builder.Build();
}

server::HttpRequest InsertRequest(uint64_t i) {
  const std::string row = "g" + std::to_string(i % 8) + "," +
                          std::to_string(i) + ",1.5";
  server::HttpRequest request;
  const server::HttpParseResult parsed = server::ParseHttpRequest(
      "POST /update?table=t&op=insert HTTP/1.1\r\nContent-Length: " +
          std::to_string(row.size()) + "\r\n\r\n" + row,
      &request);
  if (parsed.state != server::ParseState::kDone) std::abort();
  return request;
}

void RemoveTree(storage::Env* env, const std::string& dir) {
  auto entries = env->ListDir(dir);
  if (!entries.ok()) return;
  for (const std::string& name : *entries) {
    (void)env->RemoveFile(dir + "/" + name);
  }
}

struct RunResult {
  double seconds = 0;
  double snapshot_seconds = 0;
  uint64_t wal_bytes = 0;
};

// Applies `updates` inserts through /update. `policy` empty = durability
// disabled (in-memory baseline).
RunResult RunPolicy(const std::string& policy, uint64_t updates) {
  storage::Env* env = storage::Env::Default();
  const std::string dir = "/tmp/galaxy_durability_bench_" +
                          std::to_string(::getpid()) + "_" +
                          (policy.empty() ? "none" : policy);
  RemoveTree(env, dir);

  sql::Database db;
  server::Server server(&db, server::ServerOptions{});
  std::unique_ptr<storage::DurabilityManager> durability;
  if (!policy.empty()) {
    storage::DurabilityOptions options;
    auto parsed = storage::ParseFsyncPolicy(policy);
    if (!parsed.ok()) std::abort();
    options.wal.policy = *parsed;
    auto opened = storage::DurabilityManager::Open(
        env, dir, &db, options, server.DurabilityHooks());
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                   opened.status().ToString().c_str());
      std::abort();
    }
    durability = std::move(*opened);
  }
  db.Register("t", SeedTable());
  if (durability != nullptr) {
    if (!durability->Bootstrap().ok()) std::abort();
    server.AttachDurability(durability.get());
  }

  RunResult result;
  WallTimer timer;
  for (uint64_t i = 0; i < updates; ++i) {
    if (server.Handle(InsertRequest(i)).status != 200) std::abort();
  }
  result.seconds = timer.ElapsedSeconds();

  if (durability != nullptr) {
    auto size = env->FileSize(durability->dir() + "/wal-" +
                              std::to_string(durability->generation()) +
                              ".log");
    result.wal_bytes = size.ok() ? *size : 0;
    WallTimer snap;
    if (!durability->Snapshot().ok()) std::abort();
    result.snapshot_seconds = snap.ElapsedSeconds();
  }

  durability.reset();
  RemoveTree(env, dir);
  return result;
}

}  // namespace

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_durability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  struct Config {
    std::string name;    // entry suffix
    std::string policy;  // "" = durability off
    uint64_t updates;
  };
  const uint64_t heavy = quick ? 2000 : 20000;
  const std::vector<Config> configs = {
      {"baseline_no_wal", "", heavy},
      {"fsync_never", "never", heavy},
      {"fsync_interval", "interval", heavy},
      // Every update pays a real fdatasync, so this run is much smaller.
      {"fsync_always", "always", quick ? 200 : 2000},
  };

  std::vector<BenchJsonEntry> entries;
  for (const Config& config : configs) {
    const RunResult result = RunPolicy(config.policy, config.updates);
    BenchJsonEntry e;
    e.name = "updates_" + config.name;
    e.metrics.emplace_back("updates", static_cast<double>(config.updates));
    e.metrics.emplace_back("seconds", result.seconds);
    e.metrics.emplace_back("updates_per_sec",
                           static_cast<double>(config.updates) /
                               result.seconds);
    if (!config.policy.empty()) {
      e.metrics.emplace_back("wal_bytes",
                             static_cast<double>(result.wal_bytes));
      e.metrics.emplace_back("snapshot_seconds", result.snapshot_seconds);
    }
    std::printf("%-28s", e.name.c_str());
    for (const auto& [key, value] : e.metrics) {
      std::printf("  %s=%.4g", key.c_str(), value);
    }
    std::printf("\n");
    entries.push_back(std::move(e));
  }

  if (out_path != "-") {
    if (!WriteBenchJson(out_path, "galaxy-durability-bench-v1", quick,
                        entries)) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace galaxy::bench

int main(int argc, char** argv) { return galaxy::bench::Main(argc, argv); }
