// Ablation: the two internal optimizations of Section 3.3 — the stopping
// rule and the bounding-box approximation (Figure 9) — toggled
// independently on the nested-loop algorithm, so their individual
// contribution to the record-comparison count and runtime is visible.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

void RegisterAll() {
  struct Variant {
    const char* name;
    bool stop_rule;
    bool mbb;
  };
  const Variant variants[] = {
      {"none", false, false},
      {"stop-rule", true, false},
      {"mbb", false, true},
      {"stop-rule+mbb", true, true},
  };
  for (const auto& [dist_name, dist] : PaperDistributions()) {
    for (const Variant& variant : variants) {
      std::string name =
          std::string("ablation-internal/") + dist_name + "/" + variant.name;
      datagen::GroupedWorkloadConfig config;
      config.num_records = 10000;
      config.avg_records_per_group = 100;
      config.dims = 5;
      config.distribution = dist;
      config.spread = 0.2;
      config.seed = 42;
      bool stop_rule = variant.stop_rule;
      bool mbb = variant.mbb;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, stop_rule, mbb](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedWorkload(config);
            core::AggregateSkylineOptions options;
            options.gamma = 0.5;
            options.algorithm = core::Algorithm::kNestedLoop;
            options.use_stop_rule = stop_rule;
            options.use_mbb = mbb;
            RunAggregateSkyline(state, dataset, options);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
