// Extra evaluation (not a paper figure): the five algorithms on the
// IMDB-scale synthetic movie corpus — the paper's own motivating domain —
// grouped at three granularities. Complements Figure 14's NBA panels with
// a workload whose group sizes are heavily Zipfian (filmographies).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "datagen/imdb_gen.h"

namespace galaxy::bench {
namespace {

const Table& Corpus() {
  static const Table* table = [] {
    datagen::ImdbConfig config;
    // galaxy-lint: allow(naked-new) — intentionally leaked static cache
    return new Table(datagen::ToTable(datagen::GenerateImdbCorpus(config)));
  }();
  return *table;
}

const core::GroupedDataset& CachedGrouping(const std::string& column) {
  // galaxy-lint: allow(naked-new) — intentionally leaked static cache
  static auto* cache = new std::map<std::string, core::GroupedDataset>();
  auto it = cache->find(column);
  if (it == cache->end()) {
    auto ds =
        core::GroupedDataset::FromTable(Corpus(), {column}, {"Pop", "Qual"});
    it = cache->emplace(column, std::move(ds).value()).first;
  }
  return it->second;
}

void RegisterAll() {
  for (const char* grouping : {"Director", "Genre", "Year"}) {
    for (const auto& [algo_name, algo] : PaperAlgorithms()) {
      std::string name =
          std::string("imdb/by-") + grouping + "/" + algo_name;
      std::string column = grouping;
      core::Algorithm algorithm = algo;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [column, algorithm](benchmark::State& state) {
            const core::GroupedDataset& dataset = CachedGrouping(column);
            core::AggregateSkylineOptions options;
            options.gamma = 0.5;
            options.algorithm = algorithm;
            RunAggregateSkyline(state, dataset, options);
          })
          ->Unit(benchmark::kMillisecond);
    }
    // The adaptive planner on the same grouping.
    std::string column = grouping;
    benchmark::RegisterBenchmark(
        (std::string("imdb/by-") + grouping + "/AUTO").c_str(),
        [column](benchmark::State& state) {
          const core::GroupedDataset& dataset = CachedGrouping(column);
          core::AggregateSkylineOptions options;
          options.gamma = 0.5;
          options.algorithm = core::Algorithm::kAuto;
          RunAggregateSkyline(state, dataset, options);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
