// Figure 13: anti-correlated scalability with (a) Zipfian records-per-class
// and growing n, (b) index-based methods over a wider n range, and (c) a
// sweep of records-per-class at fixed n. The Zipf series is where the
// global optimization (processing small groups first) pays off.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace galaxy::bench {
namespace {

datagen::GroupedWorkloadConfig BaseConfig() {
  datagen::GroupedWorkloadConfig config;
  config.num_records = 10000;
  config.avg_records_per_group = 100;
  config.dims = 5;
  config.distribution = datagen::Distribution::kAntiCorrelated;
  config.spread = 0.2;
  config.seed = 42;
  return config;
}

void Register(const std::string& name,
              const datagen::GroupedWorkloadConfig& config,
              core::Algorithm algorithm,
              core::GroupOrdering ordering =
                  core::GroupOrdering::kCornerDistance) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [config, algorithm, ordering](benchmark::State& state) {
        const core::GroupedDataset& dataset = CachedWorkload(config);
        core::AggregateSkylineOptions options;
        options.gamma = 0.5;
        options.algorithm = algorithm;
        options.ordering = ordering;
        RunAggregateSkyline(state, dataset, options);
      })
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  // (a) Zipfian records-per-class, n sweep, all algorithms.
  for (size_t records : {2000, 5000, 10000, 20000}) {
    for (const auto& [algo_name, algo] : PaperAlgorithms()) {
      datagen::GroupedWorkloadConfig config = BaseConfig();
      config.num_records = records;
      config.size_model = datagen::GroupSizeModel::kZipf;
      config.zipf_theta = 1.0;
      Register("fig13a/zipf/n=" + std::to_string(records) + "/" + algo_name,
               config, algo);
    }
    // The sorted algorithm with the global small-groups-first ordering
    // (Section 3.4) — the paper's motivation for the Zipf series.
    datagen::GroupedWorkloadConfig config = BaseConfig();
    config.num_records = records;
    config.size_model = datagen::GroupSizeModel::kZipf;
    config.zipf_theta = 1.0;
    Register("fig13a/zipf/n=" + std::to_string(records) + "/SI-small-first",
             config, core::Algorithm::kSorted,
             core::GroupOrdering::kSmallestFirstThenCorner);
  }

  // (b) Index methods over a wider range of n.
  for (size_t records : {20000, 50000, 100000, 200000}) {
    for (const auto& [algo_name, algo] :
         std::vector<std::pair<std::string, core::Algorithm>>{
             {"IN", core::Algorithm::kIndexed},
             {"LO", core::Algorithm::kIndexedBbox}}) {
      datagen::GroupedWorkloadConfig config = BaseConfig();
      config.num_records = records;
      Register("fig13b/uniform/n=" + std::to_string(records) + "/" + algo_name,
               config, algo);
    }
  }

  // (c) Varying records per class at fixed n = 10 000.
  for (size_t per_class : {10, 50, 100, 250, 500, 1000}) {
    for (const auto& [algo_name, algo] : PaperAlgorithms()) {
      datagen::GroupedWorkloadConfig config = BaseConfig();
      config.avg_records_per_group = per_class;
      Register("fig13c/uniform/perclass=" + std::to_string(per_class) + "/" +
                   algo_name,
               config, algo);
    }
  }
}

}  // namespace
}  // namespace galaxy::bench

int main(int argc, char** argv) {
  galaxy::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
